"""End-to-end cloning orchestration (the Fig. 3 pipeline).

:class:`DittoCloner` profiles a deployment once (at a representative
load, on one platform), extracts per-tier features, reconstructs the
topology from traces, generates synthetic skeleton+body per tier, and
optionally fine-tunes each tier's knobs. The result is a drop-in
synthetic :class:`~repro.app.service.Deployment` with the same service
names, placements and entry point — runnable anywhere the original runs,
without reprofiling (§4.1 Portability).

The per-tier stage runs through :mod:`repro.core.pipeline`: tiers fan
out across a process pool (or thread pool / serial loop — see
``executor``), each with deterministically derived seeds and a private
:class:`~repro.runtime.expcache.ExperimentCache` memoizing its tuning
measurements, so parallel and serial clones are bit-identical.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Union

from repro.app.service import Deployment, Placement, ServiceSpec
from repro.core.body_gen import GeneratorConfig
from repro.core.features import ServiceFeatures
from repro.core.request import CloneRequest
from repro.core.finetune import DEFAULT_MAX_TUNE_ITERATIONS, FineTuneResult
from repro.core.pipeline import (
    EXECUTOR_MODES,
    TierTask,
    derive_tier_seed,
    run_tier_pipeline,
)
from repro.core.topology import TopologySummary, analyze_topology
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import ProfilingBudget
from repro.profiling.collector import ApplicationProfile, profile_deployment
from repro.runtime.expcache import CacheStats
from repro.runtime.experiment import ExperimentConfig
from repro.telemetry.context import current_session
from repro.telemetry.session import Telemetry
from repro.telemetry.spans import span
from repro.util.errors import (
    ConfigurationError,
    FidelityGateError,
    SimBudgetExceededError,
    TierExecutionError,
)
from repro.util.rng import derive_seed
from repro.validation.gate import FidelityGate, FidelityReport
from repro.validation.remediate import RemediationPolicy, RemediationStep


@dataclass
class CloneReport:
    """What the cloning session produced and how well tuning went."""

    features: Dict[str, ServiceFeatures]
    topology: Optional[TopologySummary]
    tuning: Dict[str, FineTuneResult] = field(default_factory=dict)
    profile: Optional[ApplicationProfile] = None
    #: resolved executor mode the per-tier pipeline ran under
    executor: str = "serial"
    #: per-tier pipeline-stage wall-clock, seconds
    tier_seconds: Dict[str, float] = field(default_factory=dict)
    #: experiment-memoization counters aggregated across tiers
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: the observability session the clone ran under (spans, metrics,
    #: sim timeline, Chrome-trace/report export); None when telemetry
    #: was not enabled on the cloner
    telemetry: Optional[Telemetry] = None
    #: fidelity-gate verdict for the accepted clone; None when the
    #: cloner ran without ``validate=``
    fidelity: Optional[FidelityReport] = None
    #: remediation rungs climbed before this clone was produced (empty
    #: when the first attempt was accepted)
    remediation: List[RemediationStep] = field(default_factory=list)

    def tier_names(self) -> List[str]:
        """Cloned tiers."""
        return sorted(self.features)


class CloneResult(NamedTuple):
    """A finished clone. Use attribute access: ``result.synthetic``,
    ``result.report``.

    .. deprecated::
        2-tuple unpacking (``synthetic, report = result``) is a
        compatibility affordance for pre-``CloneResult`` call sites and
        is deprecated; it will keep working for the 1.x line but new
        code (and the repo's own examples/benchmarks) must use the named
        fields.
    """

    synthetic: Deployment
    report: CloneReport


class CloneObserver:
    """Lifecycle hooks a cloning session calls at phase boundaries.

    The fleet control plane's bridge into :class:`DittoCloner`: an
    observer hears every phase change (``"profiling"`` →
    ``"tuning"`` → ``"validating"``, with ``"tuning"`` re-entered per
    remediation rung) and every planned
    :class:`~repro.validation.remediate.RemediationStep`, and may raise
    from :meth:`on_phase` to abort the clone (the fleet raises
    :class:`~repro.util.errors.JobCancelledError` when a cancel marker
    appears). The default implementation is a no-op, and a cloner
    without an observer behaves bit-identically to previous releases.
    """

    def on_phase(self, phase: str, *, attempt: int = 0,
                 reason: str = "") -> None:
        """Called when the clone enters ``phase``; may raise to abort."""

    def on_remediation(self, step: RemediationStep) -> None:
        """Called when a remediation rung has been planned."""


class DittoCloner:
    """The automated cloning framework.

    All parameters are keyword-only and validated here, so a bad knob
    fails at construction instead of minutes later inside a tuning loop.

    ``executor`` selects how the per-tier stage fans out: ``"process"``
    (pool of worker processes), ``"thread"``, ``"serial"``, or
    ``"auto"`` (the default: a process pool whenever there is more than
    one tier and more than one CPU, else serial).

    ``tier_retries`` re-runs a failed tier that many extra times before
    the pipeline gives up with a
    :class:`~repro.util.errors.TierExecutionError` (which still carries
    the sibling tiers' finished outcomes); a broken worker pool
    degrades process → thread → serial automatically.
    ``checkpoint_dir`` persists each finished tier outcome to disk so a
    killed clone resumes from where it stopped instead of re-running
    completed tiers.

    ``telemetry`` opts the session into observability: pass ``True``
    (fresh :class:`~repro.telemetry.session.Telemetry`) or an existing
    session to share one registry/trace across clones. Every stage is
    then spanned, cache counters land in the session registry (workers
    included — their payloads merge back in), profiling records a
    simulated-time timeline, and the finished
    :class:`CloneReport.telemetry` exports the Chrome trace / saved-run
    JSON. Telemetry never touches a random stream: clone output is
    bit-identical with it on or off.

    ``validate`` turns the clone into a *gated* clone: pass ``True``
    (default tolerances) or a configured
    :class:`~repro.validation.gate.FidelityGate`, and the finished
    synthetic is replayed against the original under matched seeds; the
    per-metric verdict lands on :class:`CloneReport.fidelity`. A clone
    that fails the gate is not returned silently — the cloner climbs
    the ``remediation`` ladder (:class:`RemediationPolicy`: derived
    re-seeds, widened tune budgets, degraded executors) and, if every
    rung fails, raises
    :class:`~repro.util.errors.FidelityGateError` carrying the failing
    report *and* the clone, so callers can inspect or salvage it. The
    same ladder retries tiers whose simulations trip a watchdog budget
    (:class:`~repro.util.errors.SimBudgetExceededError`). With
    ``validate=None`` (the default) none of this machinery runs and
    clone output is bit-identical to previous releases.
    """

    def __init__(
        self,
        *,
        generator_config: Optional[GeneratorConfig] = None,
        budget: Optional[ProfilingBudget] = None,
        fine_tune_tiers: bool = True,
        max_tune_iterations: int = DEFAULT_MAX_TUNE_ITERATIONS,
        seed: int = 17,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        tier_retries: int = 1,
        checkpoint_dir: Optional[str] = None,
        telemetry: Union[bool, Telemetry, None] = None,
        validate: Union[bool, FidelityGate, None] = None,
        remediation: Optional[RemediationPolicy] = None,
        observer: Optional[CloneObserver] = None,
        shared_cache_dir: Optional[str] = None,
    ) -> None:
        if not isinstance(max_tune_iterations, int) \
                or isinstance(max_tune_iterations, bool) \
                or max_tune_iterations < 1:
            raise ConfigurationError(
                f"max_tune_iterations must be an int >= 1, "
                f"got {max_tune_iterations!r}")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigurationError(f"seed must be an int, got {seed!r}")
        if executor not in EXECUTOR_MODES:
            raise ConfigurationError(
                f"unknown executor {executor!r}; "
                f"expected one of {EXECUTOR_MODES}")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}")
        if not isinstance(tier_retries, int) \
                or isinstance(tier_retries, bool) or tier_retries < 0:
            raise ConfigurationError(
                f"tier_retries must be an int >= 0, got {tier_retries!r}")
        if checkpoint_dir is not None and not isinstance(checkpoint_dir, str):
            raise ConfigurationError(
                f"checkpoint_dir must be a path string, "
                f"got {checkpoint_dir!r}")
        self.generator_config = (generator_config if generator_config
                                 is not None else GeneratorConfig())
        self.budget = budget if budget is not None else ProfilingBudget()
        self.fine_tune_tiers = fine_tune_tiers
        self.max_tune_iterations = max_tune_iterations
        self.seed = seed
        self.executor = executor
        self.max_workers = max_workers
        self.tier_retries = tier_retries
        self.checkpoint_dir = checkpoint_dir
        if telemetry is True:
            telemetry = Telemetry()
        elif telemetry is False:
            telemetry = None
        if telemetry is not None and not isinstance(telemetry, Telemetry):
            raise ConfigurationError(
                f"telemetry must be a Telemetry session or a bool, "
                f"got {telemetry!r}")
        self.telemetry = telemetry
        if validate is True:
            validate = FidelityGate()
        elif validate is False:
            validate = None
        if validate is not None and not isinstance(validate, FidelityGate):
            raise ConfigurationError(
                f"validate must be a FidelityGate or a bool, "
                f"got {validate!r}")
        self.validate = validate
        if remediation is not None \
                and not isinstance(remediation, RemediationPolicy):
            raise ConfigurationError(
                f"remediation must be a RemediationPolicy, "
                f"got {remediation!r}")
        if remediation is None and validate is not None:
            # Gated clones self-heal by default; pass
            # RemediationPolicy(max_attempts=0) for a strict single shot.
            remediation = RemediationPolicy()
        self.remediation = remediation
        if observer is not None and not isinstance(observer, CloneObserver):
            raise ConfigurationError(
                f"observer must be a CloneObserver, got {observer!r}")
        self.observer = observer
        if shared_cache_dir is not None \
                and not isinstance(shared_cache_dir, str):
            raise ConfigurationError(
                f"shared_cache_dir must be a path string, "
                f"got {shared_cache_dir!r}")
        self.shared_cache_dir = shared_cache_dir

    # ------------------------------------------------------------------ #
    # request plumbing
    # ------------------------------------------------------------------ #
    @classmethod
    def for_request(cls, request: CloneRequest,
                    **overrides: Any) -> "DittoCloner":
        """A cloner configured from ``request``'s option fields.

        ``overrides`` (executor, checkpoint_dir, observer, telemetry,
        shared_cache_dir, ...) win over the request — this is how the
        fleet worker pins its per-job infrastructure while the request
        keeps the reproducibility knobs.
        """
        kwargs = request.cloner_options()
        kwargs.update(overrides)
        return cls(**kwargs)

    def _effective(self, request: CloneRequest) -> "DittoCloner":
        """``self`` with the request's option overrides applied."""
        options = request.cloner_options()
        if not options:
            return self
        kwargs: Dict[str, Any] = dict(
            generator_config=self.generator_config, budget=self.budget,
            fine_tune_tiers=self.fine_tune_tiers,
            max_tune_iterations=self.max_tune_iterations, seed=self.seed,
            executor=self.executor, max_workers=self.max_workers,
            tier_retries=self.tier_retries,
            checkpoint_dir=self.checkpoint_dir, telemetry=self.telemetry,
            validate=self.validate, remediation=self.remediation,
            observer=self.observer, shared_cache_dir=self.shared_cache_dir)
        kwargs.update(options)
        return type(self)(**kwargs)

    def _phase(self, phase: str, *, attempt: int = 0,
               reason: str = "") -> None:
        """Notify the observer of a phase boundary (may raise to abort)."""
        if self.observer is not None:
            self.observer.on_phase(phase, attempt=attempt, reason=reason)

    def clone(
        self,
        deployment: Union[Deployment, CloneRequest],
        profiling_load: Optional[LoadSpec] = None,
        profiling_config: Optional[ExperimentConfig] = None,
    ) -> CloneResult:
        """Clone a deployment; returns a :class:`CloneResult`.

        The canonical form takes one :class:`CloneRequest` — option
        fields set on the request override this cloner's knobs for the
        call. The legacy positional form
        ``clone(deployment, profiling_load, profiling_config)`` still
        works through a shim (it builds an override-free request) but
        is deprecated.

        Profiling happens once, at the request's load on its
        ``config.platform`` — the synthetic deployment then runs on any
        platform or load without reprofiling.
        """
        if isinstance(deployment, CloneRequest):
            if profiling_load is not None or profiling_config is not None:
                raise ConfigurationError(
                    "clone(request) takes no further arguments — put the "
                    "load and config on the CloneRequest")
            request = deployment
        else:
            warnings.warn(
                "clone(deployment, profiling_load, profiling_config) is "
                "deprecated; pass a repro.CloneRequest instead",
                DeprecationWarning, stacklevel=2)
            if profiling_load is None or profiling_config is None:
                raise ConfigurationError(
                    "legacy clone() needs deployment, profiling_load and "
                    "profiling_config")
            request = CloneRequest(deployment=deployment,
                                   load=profiling_load,
                                   config=profiling_config)
        cloner = self._effective(request)
        config = request.effective_config()
        with cloner._observed():
            cloner._phase("profiling")
            with span("profiling",
                      service=request.deployment.entry_service,
                      tiers=len(request.deployment.services)):
                profile = profile_deployment(
                    request.deployment, request.load, config,
                    budget=cloner.budget, seed=cloner.seed,
                )
            return cloner._clone_from_profile(
                profile,
                deployment=request.deployment,
                profiling_config=config,
                validation_load=request.effective_validation_load(),
            )

    def clone_from_profile(
        self,
        profile: ApplicationProfile,
        *,
        request: Optional[CloneRequest] = None,
        deployment: Optional[Deployment] = None,
        profiling_config: Optional[ExperimentConfig] = None,
        validation_load: Optional[LoadSpec] = None,
    ) -> CloneResult:
        """Run the per-tier pipeline over an existing profiling session.

        Splitting this from :meth:`clone` lets callers re-generate (e.g.
        with different generator configs, tuning budgets or executors)
        without paying for profiling again — the fleet worker also
        enters here when it resumes a job whose profile is already in
        the store. Pass either ``request=`` (its option fields override
        this cloner's knobs, as in :meth:`clone`) or the explicit
        ``deployment``/``profiling_config``/``validation_load`` trio.
        With ``validate=`` set, the finished clone is gated against the
        original under ``validation_load`` (reconstructed from the
        profile when not given) and remediated on failure — see the
        class docstring.
        """
        if request is not None:
            if deployment is not None or profiling_config is not None \
                    or validation_load is not None:
                raise ConfigurationError(
                    "pass either request= or the explicit "
                    "deployment/profiling_config/validation_load set, "
                    "not both")
            cloner = self._effective(request)
            return cloner._clone_from_profile(
                profile,
                deployment=request.deployment,
                profiling_config=request.effective_config(),
                validation_load=request.effective_validation_load(),
            )
        if deployment is None or profiling_config is None:
            raise ConfigurationError(
                "clone_from_profile needs a request= or both deployment "
                "and profiling_config")
        return self._clone_from_profile(
            profile, deployment=deployment,
            profiling_config=profiling_config,
            validation_load=validation_load)

    def _clone_from_profile(
        self,
        profile: ApplicationProfile,
        *,
        deployment: Deployment,
        profiling_config: ExperimentConfig,
        validation_load: Optional[LoadSpec] = None,
    ) -> CloneResult:
        with self._observed():
            topology: Optional[TopologySummary] = None
            if len(deployment.services) > 1:
                with span("topology_analysis",
                          spans=len(profile.spans)):
                    topology = analyze_topology(profile.spans)
            steps: List[RemediationStep] = []
            seed = self.seed
            max_tune_iterations = self.max_tune_iterations
            executor = self.executor
            attempt = 0
            while True:
                failure: Optional[Exception] = None
                result: Optional[CloneResult] = None
                try:
                    result = self._clone_attempt(
                        profile, deployment, profiling_config, topology,
                        steps, validation_load, seed=seed,
                        max_tune_iterations=max_tune_iterations,
                        executor=executor)
                except (SimBudgetExceededError, TierExecutionError) as error:
                    reason = self._budget_reason(error)
                    if reason is None or self.remediation is None:
                        raise
                    failure = error
                else:
                    verdict = result.report.fidelity
                    if verdict is None or verdict.passed:
                        return result
                    reason = "gate_failure"
                attempt += 1
                step = None
                if self.remediation is not None:
                    step = self.remediation.plan(
                        attempt, reason=reason, base_seed=self.seed,
                        base_tune_iterations=self.max_tune_iterations,
                        base_executor=self.executor)
                if step is None:
                    if failure is not None:
                        raise failure
                    verdict = result.report.fidelity
                    raise FidelityGateError(
                        f"clone of {deployment.entry_service!r} failed "
                        f"its fidelity gate after {attempt} attempt(s): "
                        f"{len(verdict.failures())} metric check(s) out "
                        f"of tolerance "
                        f"({', '.join(sorted({c.metric for c in verdict.failures()}))})",
                        report=verdict, result=result, attempts=attempt)
                steps.append(step)
                if self.observer is not None:
                    self.observer.on_remediation(step)
                self._count_remediation(step)
                seed = step.seed
                max_tune_iterations = step.max_tune_iterations
                executor = step.executor

    def _clone_attempt(
        self,
        profile: ApplicationProfile,
        deployment: Deployment,
        profiling_config: ExperimentConfig,
        topology: Optional[TopologySummary],
        steps: List[RemediationStep],
        validation_load: Optional[LoadSpec],
        *,
        seed: int,
        max_tune_iterations: int,
        executor: str,
    ) -> CloneResult:
        """One pipeline pass plus (when configured) its fidelity gate."""
        self._phase("tuning", attempt=len(steps),
                    reason=steps[-1].reason if steps else "")
        tasks = [
            self._tier_task(profile, name, profiling_config, seed=seed,
                            max_tune_iterations=max_tune_iterations)
            for name in deployment.services
        ]
        outcomes, mode = run_tier_pipeline(
            tasks, executor=executor, max_workers=self.max_workers,
            tier_retries=self.tier_retries,
            checkpoint_dir=self.checkpoint_dir)
        report = CloneReport(features={}, topology=topology,
                             profile=profile, executor=mode,
                             telemetry=self.telemetry,
                             remediation=list(steps))
        synthetic_services: Dict[str, ServiceSpec] = {}
        for outcome in outcomes:
            report.features[outcome.service] = outcome.features
            if outcome.tuning is not None:
                report.tuning[outcome.service] = outcome.tuning
            report.tier_seconds[outcome.service] = outcome.wall_clock_s
            report.cache_stats.merge(outcome.cache_stats)
            synthetic_services[outcome.service] = outcome.spec
            if self.telemetry is not None:
                self.telemetry.absorb(outcome.telemetry)
        self._record_report(report)
        synthetic = Deployment(
            services=synthetic_services,
            placements=[Placement(p.service, p.node)
                        for p in deployment.placements],
            entry_service=deployment.entry_service,
        )
        with span("interface_validation"):
            self._validate_interfaces(synthetic)
        if self.validate is not None:
            self._phase("validating", attempt=len(steps))
            load = (validation_load if validation_load is not None
                    else self._reconstruct_load(profile))
            # Gate under a clean config: validation measures the clone's
            # intrinsic fidelity, not its behaviour under injected
            # faults; the seed is derived from the attempt's seed so
            # remediation re-seeds the gate runs too. Watchdog budgets
            # carry over — a livelocked gate run trips remediation.
            gate_config = replace(
                profiling_config, tracer=None, fault_plan=None,
                resilience=None, seed=derive_seed(seed, "validate"))
            report.fidelity = self.validate.validate(
                deployment, synthetic, load, gate_config,
                label=deployment.entry_service)
        return CloneResult(synthetic=synthetic, report=report)

    @staticmethod
    def _reconstruct_load(profile: ApplicationProfile) -> LoadSpec:
        """A validation load matching what profiling observed."""
        if profile.profiling_qps > 0:
            return LoadSpec.open_loop(profile.profiling_qps)
        entry = profile.services.get(profile.entry_service)
        connections = entry.observed_connections if entry is not None else 0
        return LoadSpec(kind="closed", connections=max(1, connections))

    @staticmethod
    def _budget_reason(error: Exception) -> Optional[str]:
        """``"sim_budget"`` when a watchdog trip caused this failure."""
        if isinstance(error, SimBudgetExceededError):
            return "sim_budget"
        if isinstance(error, TierExecutionError) and isinstance(
                error.last_error, SimBudgetExceededError):
            return "sim_budget"
        return None

    @staticmethod
    def _count_remediation(step: RemediationStep) -> None:
        session = current_session()
        if session is None:
            return
        session.registry.counter(
            "ditto_remediation_attempts_total",
            "self-healing retries the cloner made", ("reason",),
        ).inc(1, reason=step.reason)

    @contextlib.contextmanager
    def _observed(self) -> Iterator[Optional[Telemetry]]:
        """Activate the cloner's telemetry session, if any (re-entrant)."""
        if self.telemetry is None:
            yield None
            return
        self.telemetry.activate()
        try:
            yield self.telemetry
        finally:
            self.telemetry.deactivate()

    def _record_report(self, report: CloneReport) -> None:
        """Back the report's ad-hoc fields with registry metrics."""
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        tier_seconds = registry.gauge(
            "ditto_pipeline_tier_seconds",
            "per-tier pipeline-stage wall clock", ("tier",))
        tier_histogram = registry.histogram(
            "ditto_tier_clone_seconds",
            "distribution of per-tier clone durations")
        for tier, seconds in report.tier_seconds.items():
            tier_seconds.set(seconds, tier=tier)
            tier_histogram.observe(seconds)
        registry.counter(
            "ditto_clones_total", "clone sessions finished",
            ("executor",)).inc(1, executor=report.executor)

    def _tier_task(
        self,
        profile: ApplicationProfile,
        name: str,
        profiling_config: ExperimentConfig,
        *,
        seed: Optional[int] = None,
        max_tune_iterations: Optional[int] = None,
    ) -> TierTask:
        """Build one tier's pipeline payload with derived seeds.

        ``seed``/``max_tune_iterations`` default to the cloner's own;
        remediation passes its per-attempt overrides (the task digest
        then changes too, so a retried tier never resurrects the failed
        attempt's checkpoint).
        """
        seed = self.seed if seed is None else seed
        if max_tune_iterations is None:
            max_tune_iterations = self.max_tune_iterations
        generator_config = replace(
            self.generator_config,
            seed=derive_tier_seed(seed, name, "bodygen"),
        )
        tune_config: Optional[ExperimentConfig] = None
        if self.fine_tune_tiers:
            # Tuning must measure the tier's clean behaviour: carrying
            # the profiling run's fault plan or resilience policy into
            # the calibration loop would fit knobs to injected noise.
            # shards=None: single-tier calibration is a one-node
            # simulation — the sharded runner would only add window
            # overhead to each of the many tiny tuning runs.
            tune_config = replace(
                profiling_config, tracer=None,
                fault_plan=None, resilience=None, shards=None,
                seed=derive_tier_seed(seed, name, "finetune"),
            )
        return TierTask(
            artifacts=profile.artifacts(name),
            generator_config=generator_config,
            tune_config=tune_config,
            max_tune_iterations=max_tune_iterations,
            collect_telemetry=self.telemetry is not None,
            shared_cache_dir=self.shared_cache_dir,
        )

    @staticmethod
    def _validate_interfaces(deployment: Deployment) -> None:
        """Every generated RPC must land on an existing handler."""
        for name, spec in deployment.services.items():
            for handler in spec.program.handlers.values():
                for rpc in handler.rpcs:
                    target = deployment.services.get(rpc.target_service)
                    if target is None:
                        raise ConfigurationError(
                            f"clone of {name!r} calls missing tier "
                            f"{rpc.target_service!r}")
                    target.program.handler(rpc.handler)
