"""End-to-end cloning orchestration (the Fig. 3 pipeline).

:class:`DittoCloner` profiles a deployment once (at a representative
load, on one platform), extracts per-tier features, reconstructs the
topology from traces, generates synthetic skeleton+body per tier, and
optionally fine-tunes each tier's knobs. The result is a drop-in
synthetic :class:`~repro.app.service.Deployment` with the same service
names, placements and entry point — runnable anywhere the original runs,
without reprofiling (§4.1 Portability).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.app.service import Deployment, Placement, ServiceSpec
from repro.core.body_gen import GeneratorConfig, generate_program
from repro.core.features import ServiceFeatures, extract_service_features
from repro.core.finetune import FineTuneResult, fine_tune
from repro.core.skeleton_gen import generate_skeleton
from repro.core.topology import TopologySummary, analyze_topology
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import ProfilingBudget
from repro.profiling.collector import ApplicationProfile, profile_deployment
from repro.runtime.experiment import ExperimentConfig
from repro.util.errors import ConfigurationError


@dataclass
class CloneReport:
    """What the cloning session produced and how well tuning went."""

    features: Dict[str, ServiceFeatures]
    topology: Optional[TopologySummary]
    tuning: Dict[str, FineTuneResult] = field(default_factory=dict)
    profile: Optional[ApplicationProfile] = None

    def tier_names(self) -> List[str]:
        """Cloned tiers."""
        return sorted(self.features)


class DittoCloner:
    """The automated cloning framework."""

    def __init__(
        self,
        generator_config: Optional[GeneratorConfig] = None,
        budget: Optional[ProfilingBudget] = None,
        fine_tune_tiers: bool = True,
        max_tune_iterations: int = 6,
        seed: int = 17,
    ) -> None:
        self.generator_config = (generator_config if generator_config
                                 is not None else GeneratorConfig())
        self.budget = budget if budget is not None else ProfilingBudget()
        self.fine_tune_tiers = fine_tune_tiers
        self.max_tune_iterations = max_tune_iterations
        self.seed = seed

    def clone(
        self,
        deployment: Deployment,
        profiling_load: LoadSpec,
        profiling_config: ExperimentConfig,
    ) -> tuple:
        """Clone a deployment; returns (synthetic deployment, report).

        Profiling happens once, at ``profiling_load`` on
        ``profiling_config.platform`` — the synthetic deployment then
        runs on any platform or load without reprofiling.
        """
        profile = profile_deployment(
            deployment, profiling_load, profiling_config,
            budget=self.budget, seed=self.seed,
        )
        topology: Optional[TopologySummary] = None
        if len(deployment.services) > 1:
            topology = analyze_topology(profile.spans)
        report = CloneReport(features={}, topology=topology, profile=profile)
        synthetic_services: Dict[str, ServiceSpec] = {}
        for name in deployment.services:
            artifacts = profile.artifacts(name)
            features = extract_service_features(artifacts)
            report.features[name] = features
            config = self.generator_config
            if self.fine_tune_tiers:
                tuning = fine_tune(
                    features,
                    platform_config=replace(profiling_config, tracer=None),
                    base_config=config,
                    max_iterations=self.max_tune_iterations,
                )
                report.tuning[name] = tuning
                config = replace(config, knobs=tuning.knobs)
            program, files = generate_program(features, config)
            skeleton = generate_skeleton(features.threads, features.network)
            synthetic_services[name] = ServiceSpec(
                name=name,
                skeleton=skeleton,
                program=program,
                request_mix=dict(features.handler_mix) or None,
                files=files,
            )
        synthetic = Deployment(
            services=synthetic_services,
            placements=[Placement(p.service, p.node)
                        for p in deployment.placements],
            entry_service=deployment.entry_service,
        )
        self._validate_interfaces(synthetic)
        return synthetic, report

    @staticmethod
    def _validate_interfaces(deployment: Deployment) -> None:
        """Every generated RPC must land on an existing handler."""
        for name, spec in deployment.services.items():
            for handler in spec.program.handlers.values():
                for rpc in handler.rpcs:
                    target = deployment.services.get(rpc.target_service)
                    if target is None:
                        raise ConfigurationError(
                            f"clone of {name!r} calls missing tier "
                            f"{rpc.target_service!r}")
                    target.program.handler(rpc.handler)
