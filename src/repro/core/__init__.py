"""Ditto's core: feature extraction, generation, fine tuning, cloning.

The pipeline mirrors Fig. 3 of the paper:

1. :mod:`repro.core.topology` — learn the RPC dependency graph from
   distributed traces (§4.2);
2. :mod:`repro.core.skeleton_gen` — reconstruct each tier's thread and
   network models (§4.3);
3. :mod:`repro.core.body_gen` — generate the application body: system
   calls (§4.4.1), instruction mix (§4.4.2), branch bitmask behaviour
   (§4.4.3), working-set data memory (Eq. 1, §4.4.4), instruction-memory
   blocks (Eq. 2, §4.4.5), and register-assigned data dependencies
   (§4.4.6);
4. :mod:`repro.core.finetune` — the feedback calibration loop (§4.5);
5. :mod:`repro.core.cloner` — end-to-end orchestration producing a
   drop-in synthetic deployment;
6. :mod:`repro.core.codegen` — the shareable x86-flavoured assembly
   listing of the generated body.
"""

from repro.core.features import ServiceFeatures, extract_service_features
from repro.core.body_gen import GeneratorConfig, TuningKnobs, generate_program
from repro.core.skeleton_gen import generate_skeleton
from repro.core.topology import analyze_topology
from repro.core.finetune import (
    DEFAULT_MAX_TUNE_ITERATIONS,
    FineTuneResult,
    fine_tune,
)
from repro.core.cloner import (
    CloneObserver,
    CloneReport,
    CloneResult,
    DittoCloner,
)
from repro.core.request import CloneRequest
from repro.core.pipeline import (
    TierOutcome,
    TierTask,
    clone_tier,
    derive_tier_seed,
    run_tier_pipeline,
)
from repro.core.codegen import emit_assembly
from repro.core.bundle import (
    audit_bundle_confidentiality,
    deployment_from_bundle,
    load_bundle,
    save_bundle,
)

__all__ = [
    "CloneObserver",
    "CloneReport",
    "CloneRequest",
    "CloneResult",
    "DEFAULT_MAX_TUNE_ITERATIONS",
    "audit_bundle_confidentiality",
    "deployment_from_bundle",
    "load_bundle",
    "save_bundle",
    "DittoCloner",
    "FineTuneResult",
    "GeneratorConfig",
    "ServiceFeatures",
    "TierOutcome",
    "TierTask",
    "TuningKnobs",
    "analyze_topology",
    "clone_tier",
    "derive_tier_seed",
    "emit_assembly",
    "extract_service_features",
    "fine_tune",
    "generate_program",
    "generate_skeleton",
    "run_tier_pipeline",
]
