"""Register assignment cloning dependency distances (§4.4.6).

"To assign registers for each instruction, Ditto samples a (RAW, WAR,
WAW) distance tuple from the profiled distributions, and chooses an
available register with the closest distance values."

The allocator walks the generated instruction slots keeping, per
register, the ages of its last write and last read. For each slot it
samples a target tuple and scores every free register by how close the
assignment would land to the targets, then realises the best choice.
It returns both the concrete assignment (for the assembly listing) and
the *realised* dependency profile (for the timing IR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.ir import DependencyProfile
from repro.isa.registers import RegisterFile
from repro.profiling.deps import DependencyDistanceProfile
from repro.util.errors import ConfigurationError
from repro.util.stats import Histogram


@dataclass(frozen=True)
class RegisterAssignment:
    """One instruction slot's realised operand registers."""

    index: int
    dest: str
    source: str
    raw_distance: float
    war_distance: float
    waw_distance: float


@dataclass
class AllocationResult:
    """Assignments plus the dependency profile they realise."""

    assignments: List[RegisterAssignment]
    realized: DependencyProfile


def _sample_from(hist: Optional[Histogram], rng: np.random.Generator,
                 default: float) -> float:
    if hist is None:
        return default
    return float(hist.sample(rng, 1)[0])


def assign_registers(
    slots: int,
    profile: DependencyDistanceProfile,
    rng: np.random.Generator,
    register_file: Optional[RegisterFile] = None,
) -> AllocationResult:
    """Assign destination/source registers for ``slots`` instructions."""
    if slots < 1:
        raise ConfigurationError("need at least one instruction slot")
    rf = register_file if register_file is not None else RegisterFile()
    pool = [reg.name for reg in rf.free_gprs()]
    if len(pool) < 2:
        raise ConfigurationError("register pool too small")
    last_write: Dict[str, float] = {name: -64.0 for name in pool}
    last_read: Dict[str, float] = {name: -64.0 for name in pool}
    assignments: List[RegisterAssignment] = []
    raw_hist: Dict[int, float] = {}
    war_hist: Dict[int, float] = {}
    waw_hist: Dict[int, float] = {}
    # Build the three samplers once; their sorted key order (and hence
    # every draw) is identical to rebuilding a Histogram per slot.
    raw_sampler = Histogram(dict(profile.raw)) if profile.raw else None
    war_sampler = Histogram(dict(profile.war)) if profile.war else None
    waw_sampler = Histogram(dict(profile.waw)) if profile.waw else None
    for index in range(slots):
        target_raw = _sample_from(raw_sampler, rng, default=24.0)
        target_war = _sample_from(war_sampler, rng, default=32.0)
        target_waw = _sample_from(waw_sampler, rng, default=48.0)
        # Source: the register whose last write sits closest to the RAW
        # target distance behind us.
        source = min(
            pool,
            key=lambda name: abs((index - last_write[name]) - target_raw),
        )
        # Destination: balance WAR (since its last read) and WAW (since
        # its last write); never clobber the chosen source.
        def waw_war_score(name: str) -> float:
            war = index - last_read[name]
            waw = index - last_write[name]
            return abs(war - target_war) + abs(waw - target_waw)

        dest_candidates = [name for name in pool if name != source]
        dest = min(dest_candidates, key=waw_war_score)
        realized_raw = index - last_write[source]
        realized_war = index - last_read[dest]
        realized_waw = index - last_write[dest]
        assignments.append(RegisterAssignment(
            index=index, dest=dest, source=source,
            raw_distance=realized_raw, war_distance=realized_war,
            waw_distance=realized_waw,
        ))
        for hist, value in ((raw_hist, realized_raw),
                            (war_hist, realized_war),
                            (waw_hist, realized_waw)):
            edge = DependencyProfile.quantize_distance(max(1.0, value))
            hist[edge] = hist.get(edge, 0.0) + 1.0
        last_read[source] = float(index)
        last_write[dest] = float(index)
    realized = DependencyProfile(
        raw=raw_hist, war=war_hist, waw=waw_hist,
        pointer_chase_frac=profile.pointer_chase_frac,
    )
    return AllocationResult(assignments=assignments, realized=realized)
