"""Application-body generation (§4.4).

Builds each synthetic handler from the profiled feature set:

- **system calls** are replayed from the per-operation templates with
  profiled counts and argument sizes (§4.4.1);
- **instruction blocks** follow the instruction-memory working-set
  distribution (Eq. 2): one static looping block per populated
  power-of-two code footprint, its loop count matching the profiled
  dynamic executions (§4.4.5);
- each block's **instruction mix** is filled from the profiled iform
  distribution (§4.4.2);
- **conditional branches** get (taken, transition) rates drawn from the
  log-scale-quantised profile — the <BIT_MASK> mechanism of Fig. 3
  (§4.4.3);
- **data accesses** realise the Eq. 1 working-set histogram as
  sequential sweeps (Fig. 4), split into prefetcher-regular, random and
  pointer-chasing portions per the profiled regularity and MLP
  (§4.4.4, §4.4.6);
- **registers** are assigned by dependency-distance matching (§4.4.6).

Every step can be disabled through :class:`GeneratorConfig` to reproduce
the paper's accuracy-decomposition study (Fig. 9), and every feature
group has a multiplicative :class:`TuningKnobs` entry for the §4.5
fine-tuning loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.app.program import ComputeOp, Handler, Op, Program, RpcOp, SyscallOp
from repro.core.features import ServiceFeatures
from repro.core.regalloc import assign_registers
from repro.hw.ir import (
    BlockSpec,
    BranchSpec,
    DependencyProfile,
    MemAccessSpec,
    MemPattern,
)
from repro.kernelsim.syscalls import SyscallInvocation
from repro.profiling.branches import BranchProfile
from repro.profiling.deps import DependencyDistanceProfile
from repro.profiling.syscalls import SyscallTemplateEntry
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

#: conditional-branch iforms the generator emits
CONDITIONAL_BRANCHES = ("JZ_rel", "JNZ_rel", "JL_rel")


def _is_narrow_port(name: str) -> bool:
    """True for iforms that serialise on a single execution port."""
    from repro.isa.instructions import iform as _iform
    from repro.isa.ports import PortGroup
    form = _iform(name)
    narrow = {PortGroup.MUL, PortGroup.DIV, PortGroup.FP_DIV}
    used = set(form.port_uops)
    return bool(used & narrow) and used <= narrow | {PortGroup.ALU,
                                                     PortGroup.LOAD}
#: wait syscalls belong to the skeleton, not the handler body
WAIT_SYSCALLS = ("epoll_wait", "poll", "select")


@dataclass(frozen=True)
class TuningKnobs:
    """Multiplicative calibration knobs (§4.5 groups)."""

    instr_scale: float = 1.0
    imem_scale: float = 1.0
    dmem_scale: float = 1.0
    #: scales only the large (LLC-scale, >=1MB) working sets
    big_wset_scale: float = 1.0
    transition_scale: float = 1.0
    chase_scale: float = 1.0
    #: >1 compresses dependency distances (less ILP, lower IPC)
    ilp_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("instr_scale", "imem_scale", "dmem_scale",
                     "big_wset_scale", "transition_scale", "chase_scale",
                     "ilp_scale"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def with_(self, **changes) -> "TuningKnobs":
        """A modified copy."""
        return replace(self, **changes)


@dataclass(frozen=True)
class GeneratorConfig:
    """Feature switches (Fig. 9 stages) plus tuning knobs."""

    syscalls: bool = True            # stage B
    instruction_count: bool = True   # stage C
    instruction_mix: bool = True     # stage D
    branch_behavior: bool = True     # stage E
    instruction_memory: bool = True  # stage F
    data_memory: bool = True         # stage G
    data_dependencies: bool = True   # stage H
    knobs: TuningKnobs = field(default_factory=TuningKnobs)
    max_blocks: int = 16
    seed: int = 1729

    @staticmethod
    def stage(name: str) -> "GeneratorConfig":
        """The cumulative Fig. 9 configurations, A..H (I adds tuning)."""
        order = ["skeleton", "syscall", "inst_count", "inst_mix", "branch",
                 "imem", "dmem", "datadep"]
        if name not in order:
            raise ConfigurationError(
                f"unknown stage {name!r}; expected one of {order}")
        level = order.index(name)
        return GeneratorConfig(
            syscalls=level >= 1,
            instruction_count=level >= 2,
            instruction_mix=level >= 3,
            branch_behavior=level >= 4,
            instruction_memory=level >= 5,
            data_memory=level >= 6,
            data_dependencies=level >= 7,
        )


# --------------------------------------------------------------------- #
# instruction blocks
# --------------------------------------------------------------------- #
def _instruction_bins(
    features: ServiceFeatures,
    config: GeneratorConfig,
    instr_target: float,
) -> List[Tuple[int, float]]:
    """(code working-set size, dynamic executions) per generated block."""
    if not config.instruction_memory or not features.instr_wsets:
        return [(256, instr_target)]
    total = sum(features.instr_wsets.values())
    if total <= 0:
        return [(256, instr_target)]
    bins = [
        (size, execs / total * instr_target)
        for size, execs in sorted(features.instr_wsets.items())
        if execs / total >= 0.002
    ]
    bins.sort(key=lambda item: -item[1])
    bins = bins[: config.max_blocks]
    # Renormalise after dropping the tail.
    kept = sum(execs for _, execs in bins)
    if kept <= 0:
        return [(256, instr_target)]
    return [(size, execs / kept * instr_target) for size, execs in
            sorted(bins)]


def _mix_counts(
    features: ServiceFeatures,
    config: GeneratorConfig,
    instructions: float,
) -> Dict[str, float]:
    if not config.instruction_mix:
        # Stage C: match the count with plain dependent-free adds.
        return {"ADD_r64_r64": instructions}
    counts: Dict[str, float] = {}
    for name, prob in features.mix.mix.normalized().items():
        if str(name) in features.mix.rep_counts:
            # REP-prefixed forms get dedicated blocks carrying their own
            # profiled repeat counts — a block-global rep_elements would
            # cross-contaminate e.g. REPNZ scans with REP MOVS bulk copies.
            continue
        if _is_narrow_port(str(name)):
            # Narrow-port iforms (single-port multipliers/dividers, e.g.
            # CRC32 on port 1) get dedicated blocks: spreading them over
            # the mix would hide the port serialisation the original's
            # hot kernels exhibit — the very concentration the §4.4.2
            # clustering is meant to preserve.
            continue
        value = instructions * prob
        if value > 1e-6:
            counts[str(name)] = value
    return counts or {"ADD_r64_r64": instructions}


def _branch_specs(
    features: ServiceFeatures,
    config: GeneratorConfig,
    counts: Dict[str, float],
    code_instructions: float,
    rng: np.random.Generator,
) -> Tuple[BranchSpec, ...]:
    executions = sum(counts.get(name, 0.0) for name in CONDITIONAL_BRANCHES)
    if executions <= 0:
        return ()
    static_density = max(1, int(code_instructions
                                * max(0.01, features.mix.branch_fraction())))
    if not config.branch_behavior:
        # Pre-E assumption: the hostile corner of the grid.
        return (BranchSpec(executions=executions, taken_rate=0.5,
                           transition_rate=0.5,
                           static_count=static_density),)
    top_bins = features.branches.rate_distribution.most_common(6)
    total_weight = sum(weight for _, weight in top_bins)
    specs: List[BranchSpec] = []
    knob = config.knobs.transition_scale
    for bin_, weight in top_bins:
        taken, transition = BranchProfile.rates_for_bin(bin_)
        share = weight / total_weight
        specs.append(BranchSpec(
            executions=executions * share,
            taken_rate=taken,
            transition_rate=min(1.0, transition * knob),
            static_count=max(1, int(static_density * share)),
        ))
    return tuple(specs)


def _memory_specs(
    features: ServiceFeatures,
    config: GeneratorConfig,
    block_index: int,
    block_count: int,
    iterations: float,
) -> Tuple[MemAccessSpec, ...]:
    """Realise this block's share of the Eq. 1 working-set histogram.

    Data bins are dealt round-robin across blocks so each bin lands in
    exactly one block (keeping the generated spec count proportional to
    the profile's support).
    """
    if not features.data_wsets:
        return ()
    items = sorted(features.data_wsets.items())
    if not config.data_memory:
        # Pre-G assumption: every access hits the smallest working set.
        total = sum(accesses for _, accesses in items)
        if block_index != 0:
            return ()
        return (MemAccessSpec(wset_bytes=64,
                              accesses=total / max(1.0, iterations)),)
    specs: List[MemAccessSpec] = []
    for index, (size, accesses) in enumerate(items):
        if index % block_count != block_index:
            continue
        scale = (config.knobs.big_wset_scale if size >= 1024 * 1024
                 else config.knobs.dmem_scale)
        wset = max(64, int(size * scale))
        large = wset > 512 * 1024
        # Dependent-load (pointer-chase) fractions attribute per region
        # class: the DCFG ties dependent loads to the large structures
        # they actually walk.
        base_chase = (features.chase_ratio_large if large
                      else features.deps.pointer_chase_frac)
        chase = (min(0.95, base_chase * config.knobs.chase_scale)
                 if config.data_dependencies else 0.0)
        ratio = (features.regular_ratio_large if large
                 else features.regular_ratio)
        regular = min(1.0 - chase, max(0.0, ratio))
        irregular = max(0.0, 1.0 - regular - chase)
        per_iteration = accesses / max(1.0, iterations)
        if per_iteration <= 0:
            continue
        for pattern, fraction in (
            (MemPattern.SEQUENTIAL, regular),
            (MemPattern.SHUFFLED, irregular),
            (MemPattern.POINTER_CHASE, chase),
        ):
            if fraction <= 0.01:
                continue
            specs.append(MemAccessSpec(
                wset_bytes=wset,
                accesses=per_iteration * fraction,
                pattern=pattern,
                write_frac=features.write_frac,
                shared_frac=features.shared_ratio,
            ))
    return tuple(specs)


def _dependency_profile(
    features: ServiceFeatures,
    config: GeneratorConfig,
    slots: int,
    rng: np.random.Generator,
) -> DependencyProfile:
    if not config.data_dependencies:
        # Pre-H assumption: the strongest possible dependencies.
        return DependencyProfile(raw={1: 1.0}, pointer_chase_frac=0.0)
    profiled = features.deps
    ilp = config.knobs.ilp_scale
    if ilp != 1.0:
        # The calibration knob compresses/stretches the distance grid,
        # tightening or relaxing the clone's instruction-level parallelism.
        from repro.hw.ir import DependencyProfile as _DP
        scaled: Dict[int, float] = {}
        for edge, weight in profiled.raw.items():
            new_edge = _DP.quantize_distance(max(1.0, edge / ilp))
            scaled[new_edge] = scaled.get(new_edge, 0.0) + weight
        profiled = DependencyDistanceProfile(
            raw=scaled, war=dict(profiled.war), waw=dict(profiled.waw),
            pointer_chase_frac=profiled.pointer_chase_frac,
        )
    allocation = assign_registers(
        slots=max(8, min(slots, 384)),
        profile=profiled,
        rng=rng,
    )
    realized = allocation.realized
    chase = min(1.0, profiled.pointer_chase_frac * config.knobs.chase_scale)
    return DependencyProfile(
        raw=dict(realized.raw),
        war=dict(realized.war),
        waw=dict(realized.waw),
        pointer_chase_frac=chase,
    )


def build_blocks(
    features: ServiceFeatures,
    config: GeneratorConfig,
    handler: str,
    rng: np.random.Generator,
) -> List[BlockSpec]:
    """Generate the synthetic instruction blocks for one handler."""
    if not config.instruction_count:
        # Stage A/B: an (almost) empty body.
        return [BlockSpec(name=f"syn_{handler}_empty",
                          iform_counts={"NOP": 16.0}, code_bytes=64)]
    instr_target = (features.instructions_per_request(handler)
                    * config.knobs.instr_scale)
    instr_target = max(64.0, instr_target)
    bins = _instruction_bins(features, config, instr_target)
    blocks: List[BlockSpec] = []
    for index, (size, execs) in enumerate(bins):
        code_bytes = max(64, int(size * config.knobs.imem_scale))
        static_instructions = max(16.0, code_bytes / 4.0)
        iterations = max(1.0, execs / static_instructions)
        per_iteration = execs / iterations
        counts = _mix_counts(features, config, per_iteration)
        branches = _branch_specs(features, config, counts,
                                 static_instructions, rng)
        mem = _memory_specs(features, config, index, len(bins), iterations)
        deps = _dependency_profile(features, config, int(per_iteration), rng)
        blocks.append(BlockSpec(
            name=f"syn_{handler}_b{index}_{size}",
            iform_counts=counts,
            iterations=iterations,
            code_bytes=code_bytes,
            mem=mem,
            branches=branches,
            deps=deps,
        ))
    if config.instruction_mix:
        mix = features.mix.mix.normalized()
        # One dedicated block per REP-prefixed iform with its own
        # profiled repeat count.
        for name, rep_count in sorted(features.mix.rep_counts.items()):
            executions = instr_target * mix.get(name, 0.0)
            if executions < 0.05:
                continue
            blocks.append(BlockSpec(
                name=f"syn_{handler}_rep_{name}",
                iform_counts={name: executions},
                code_bytes=64,
                rep_elements=rep_count,
            ))
        # Dedicated blocks for narrow-port clusters preserve the port
        # serialisation of the original's hot kernels.
        for name in sorted(mix):
            if not _is_narrow_port(str(name)):
                continue
            executions = instr_target * mix[str(name)]
            if executions < 1.0:
                continue
            blocks.append(BlockSpec(
                name=f"syn_{handler}_port_{name}",
                iform_counts={str(name): executions},
                code_bytes=64,
                deps=DependencyProfile(raw={16: 1.0}),
            ))
    return blocks


# --------------------------------------------------------------------- #
# handlers
# --------------------------------------------------------------------- #
def _emit_syscalls(
    entries: List[SyscallTemplateEntry],
    file_map: Dict[str, str],
) -> List[Op]:
    ops: List[Op] = []
    for entry in entries:
        count = int(round(entry.count_per_request))
        if count < 1 and entry.count_per_request > 0.25:
            count = 1
        for _ in range(count):
            ops.append(SyscallOp(SyscallInvocation(
                entry.name,
                nbytes=entry.mean_bytes,
                file=(file_map.get(entry.file) if entry.file else None),
                write=entry.write,
            )))
    return ops


def _split_template(
    template: List[SyscallTemplateEntry],
) -> Tuple[List[SyscallTemplateEntry], ...]:
    rx, disk, other, tx = [], [], [], []
    for entry in template:
        if entry.name in WAIT_SYSCALLS:
            continue  # the skeleton owns the wait syscall
        device = SyscallInvocation(entry.name).spec.device
        if device == "net_rx":
            rx.append(entry)
        elif device == "net_tx":
            tx.append(entry)
        elif device == "disk":
            disk.append(entry)
        else:
            other.append(entry)
    return rx, disk, other, tx


def build_handler(
    features: ServiceFeatures,
    config: GeneratorConfig,
    handler: str,
    file_map: Dict[str, str],
    rng: np.random.Generator,
) -> Handler:
    """Generate one synthetic handler."""
    blocks = build_blocks(features, config, handler, rng)
    compute_ops: List[Op] = [ComputeOp(block) for block in blocks]
    half = max(1, len(compute_ops) // 2)
    ops: List[Op] = []
    rx: List[Op] = []
    mid: List[Op] = []
    tx: List[Op] = []
    if config.syscalls:
        template = features.syscalls.templates.get(handler, [])
        rx_entries, disk_entries, other_entries, tx_entries = (
            _split_template(template))
        rx = _emit_syscalls(rx_entries, file_map)
        mid = _emit_syscalls(disk_entries, file_map) + _emit_syscalls(
            other_entries, file_map)
        tx = _emit_syscalls(tx_entries, file_map)
    rpcs: List[Op] = [
        RpcOp(target, request_bytes, response_bytes,
              handler=target_operation, parallel_group=group)
        for target, target_operation, request_bytes, response_bytes, group in
        features.rpc_calls.get(handler, [])
    ]
    ops.extend(rx)
    ops.extend(compute_ops[:half])
    ops.extend(mid)
    ops.extend(rpcs)
    ops.extend(compute_ops[half:])
    ops.extend(tx)
    if not ops:
        ops = compute_ops
    return Handler(name=handler, ops=tuple(ops))


def generate_program(
    features: ServiceFeatures,
    config: Optional[GeneratorConfig] = None,
) -> Tuple[Program, Dict[str, float]]:
    """Generate a synthetic :class:`Program` plus its file declarations.

    File names are anonymised (``synthetic_file_N``) while their sizes —
    which determine page-cache behaviour — are preserved.
    """
    config = config if config is not None else GeneratorConfig()
    stream = RngStream(config.seed, "bodygen", features.service)
    file_map = {
        original: f"synthetic_file_{index}"
        for index, original in enumerate(sorted(features.file_sizes))
    }
    handlers: Dict[str, Handler] = {}
    handler_names = sorted(features.handler_mix) or ["synthetic"]
    for handler_name in handler_names:
        rng = stream.rng("handler", handler_name)
        handlers[handler_name] = build_handler(
            features, config, handler_name, file_map, rng)
    # The synthetic binary's framework footprint mirrors the original's
    # observed hot text size, so cold-dispatch i-cache behaviour matches.
    hot_code = features.hot_code_bytes or 64 * 1024.0
    program = Program(
        handlers=handlers,
        hot_code_bytes=hot_code * config.knobs.imem_scale,
        resident_bytes=features.resident_bytes,
    )
    files = {
        file_map[original]: size
        for original, size in features.file_sizes.items()
    }
    return program, files
