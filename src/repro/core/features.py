"""The platform-independent feature set (§4.1's "Abstraction" output).

:func:`extract_service_features` runs every profiler over one service's
artifacts and bundles the results. This bundle — not the artifacts, and
certainly not the original application model — is what the generator
consumes, and it is what an application owner would actually share: a
skeleton plus post-processed statistical characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import iform
from repro.profiling.artifacts import ServiceArtifacts
from repro.profiling.branches import BranchProfile, profile_branches
from repro.profiling.deps import (
    DependencyDistanceProfile,
    profile_dependencies,
)
from repro.profiling.instmix import InstructionMixProfile, profile_instruction_mix
from repro.profiling.netmodel import NetworkModelProfile, profile_network_model
from repro.profiling.syscalls import SyscallProfile, profile_syscalls
from repro.profiling.threads import ThreadModelProfile, profile_thread_model
from repro.profiling.wset import (
    invert_data_hits,
    region_chase_ratio,
    invert_instruction_hits,
    profile_working_set_regions,
    region_regularity_ratio,
    region_shared_ratio,
)
from repro.runtime.metrics import ServiceMetrics


@dataclass
class ServiceFeatures:
    """Everything Ditto learned about one service."""

    service: str
    mix: InstructionMixProfile
    branches: BranchProfile
    deps: DependencyDistanceProfile
    syscalls: SyscallProfile
    threads: ThreadModelProfile
    network: NetworkModelProfile
    #: per-request data accesses per power-of-two working set (Eq. 1)
    data_wsets: Dict[int, float]
    #: per-request dynamic executions per instruction working set (Eq. 2)
    instr_wsets: Dict[int, float]
    regular_ratio: float
    #: regularity restricted to large (>512KB) regions — what the
    #: prefetcher can actually hide on the capacity-miss path
    regular_ratio_large: float
    #: dependent-load fraction among large-region accesses
    chase_ratio_large: float
    shared_ratio: float
    write_frac: float
    handler_mix: Dict[str, float]
    rpc_calls: Dict[str, List[Tuple[str, str, float, float, Optional[int]]]]
    resident_bytes: float
    hot_code_bytes: float
    file_sizes: Dict[str, float]
    target_counters: Optional[ServiceMetrics] = None
    observed_qps: float = 0.0
    observed_connections: int = 0
    observed_closed_loop: bool = False

    def instructions_per_request(self, handler: Optional[str] = None) -> float:
        """Target dynamic user instructions per request."""
        if handler is not None:
            value = self.mix.instructions_per_request_by_handler.get(handler)
            if value is not None:
                return value
        return self.mix.instructions_per_request


def _write_fraction(mix: InstructionMixProfile) -> float:
    """Store fraction among memory-touching instructions."""
    stores = 0.0
    memory = 0.0
    for name, prob in mix.mix.normalized().items():
        form = iform(str(name))
        if form.uses_memory:
            memory += prob
            if form.writes_mem:
                stores += prob
    if memory <= 0:
        return 0.0
    return stores / memory


LARGE_REGION_BYTES = 512 * 1024


def _large_region_regularity(artifacts: ServiceArtifacts) -> float:
    value = region_regularity_ratio(
        artifacts.data_regions, min_region_bytes=LARGE_REGION_BYTES)
    if value > 0.0:
        return value
    return region_regularity_ratio(artifacts.data_regions)


def extract_service_features(artifacts: ServiceArtifacts) -> ServiceFeatures:
    """Run all feature extractors over one service's artifacts."""
    mix = profile_instruction_mix(artifacts)
    branches = profile_branches(artifacts)
    deps = profile_dependencies(artifacts)
    syscalls = profile_syscalls(artifacts)
    threads = profile_thread_model(artifacts)
    network = profile_network_model(artifacts)
    requests = max(1, artifacts.requests_observed)
    data_sweep = profile_working_set_regions(artifacts.data_regions)
    instr_sweep = profile_working_set_regions(artifacts.instr_regions,
                                              max_size=16 * 1024 * 1024)
    data_wsets = {
        size: accesses / requests
        for size, accesses in invert_data_hits(data_sweep).items()
    }
    instr_wsets = {
        size: execs / requests
        for size, execs in invert_instruction_hits(instr_sweep).items()
    }
    return ServiceFeatures(
        service=artifacts.service,
        mix=mix,
        branches=branches,
        deps=deps,
        syscalls=syscalls,
        threads=threads,
        network=network,
        data_wsets=data_wsets,
        instr_wsets=instr_wsets,
        regular_ratio=region_regularity_ratio(artifacts.data_regions),
        regular_ratio_large=_large_region_regularity(artifacts),
        chase_ratio_large=region_chase_ratio(
            artifacts.data_regions, min_region_bytes=LARGE_REGION_BYTES),
        shared_ratio=region_shared_ratio(artifacts.data_regions),
        write_frac=_write_fraction(mix),
        handler_mix=dict(artifacts.observed_handler_mix),
        rpc_calls=dict(artifacts.rpc_calls),
        resident_bytes=artifacts.observed_resident_bytes,
        hot_code_bytes=artifacts.observed_hot_code_bytes,
        file_sizes=dict(artifacts.file_sizes),
        target_counters=artifacts.counters,
        observed_qps=artifacts.observed_qps,
        observed_connections=artifacts.observed_connections,
        observed_closed_loop=artifacts.observed_closed_loop,
    )
