"""Fine tuning (§4.5).

The profilers introduce quantisation/sampling error, and body profiling
ignores user/kernel interactions, so the freshly-generated clone's
counters deviate from the target. The fine tuner iteratively:

1. runs the synthetic service stand-alone on the profiling platform at
   the profiling load;
2. compares its counters with the target's;
3. nudges the knob paired with each metric group (relationships are
   mostly linear, so a damped multiplicative update converges quickly);
4. regenerates the body.

It stops when the mean error over the tracked metrics drops under the
tolerance or after ``max_iterations`` (the paper: "within ten iterations
to reach over 95% accuracy").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.app.service import Deployment, ServiceSpec
from repro.core.body_gen import GeneratorConfig, TuningKnobs, generate_program
from repro.core.features import ServiceFeatures
from repro.core.skeleton_gen import generate_skeleton
from repro.app.program import ComputeOp, Handler, Program, RpcOp, SyscallOp
from repro.loadgen.generator import LoadSpec
from repro.runtime.expcache import ExperimentCache
from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.runtime.metrics import ServiceMetrics
from repro.telemetry.context import current_session
from repro.telemetry.spans import span
from repro.util.errors import ConfigurationError, SimBudgetExceededError
from repro.util.stats import relative_error

#: metric -> knob pairing; groups are tuned jointly via their shared run
KNOB_FOR_METRIC = {
    "l1i": "imem_scale",
    "l1d": "dmem_scale",
    "llc": "big_wset_scale",
    "branch": "transition_scale",
}
#: update damping (linear-ish knob/metric relationships, §4.5)
DAMPING = 0.6
#: knob clamp range
KNOB_RANGE = (0.1, 10.0)
#: default tuning budget, shared by :func:`fine_tune` and
#: :class:`~repro.core.cloner.DittoCloner`. The paper reports the loop
#: "converges within ten iterations to reach over 95% accuracy" (§4.5),
#: so ten is the budget; convergence under ``tolerance`` exits earlier.
DEFAULT_MAX_TUNE_ITERATIONS = 10


@dataclass
class FineTuneResult:
    """Outcome of a tuning session."""

    knobs: TuningKnobs
    iterations: int
    final_errors: Dict[str, float]
    error_history: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def mean_error(self) -> float:
        """Mean relative error at the end of tuning."""
        if not self.final_errors:
            return math.inf
        return sum(self.final_errors.values()) / len(self.final_errors)


def _strip_rpcs(program: Program) -> Program:
    """Remove downstream calls so a tier can be tuned stand-alone."""
    handlers = {}
    for name, handler in program.handlers.items():
        ops = tuple(op for op in handler.ops if not isinstance(op, RpcOp))
        if not ops:
            ops = handler.ops
        handlers[name] = Handler(name, ops)
    return Program(
        handlers=handlers,
        background_blocks=program.background_blocks,
        hot_code_bytes=program.hot_code_bytes,
        resident_bytes=program.resident_bytes,
    )


def _measure(
    features: ServiceFeatures,
    config: GeneratorConfig,
    platform_config: ExperimentConfig,
    load: LoadSpec,
    cache: Optional[ExperimentCache] = None,
) -> Tuple[ServiceMetrics, ServiceSpec]:
    program, files = generate_program(features, config)
    skeleton = generate_skeleton(features.threads, features.network)
    spec = ServiceSpec(
        name=features.service,
        skeleton=skeleton,
        program=_strip_rpcs(program),
        request_mix=dict(features.handler_mix) or None,
        files=files,
    )
    deployment = Deployment.single(spec)
    if cache is not None:
        result = cache.run(deployment, load, platform_config)
    else:
        result = run_experiment(deployment, load, platform_config)
    return result.service(features.service), spec


def _record_tuning(service: str, iterations: int, converged: bool) -> None:
    """Account a finished tuning session in the ambient registry."""
    session = current_session()
    if session is None:
        return
    session.registry.counter(
        "ditto_tune_iterations_total",
        "fine-tune iterations executed", ("service",),
    ).inc(iterations, service=service)
    session.registry.counter(
        "ditto_tune_sessions_total",
        "fine-tune sessions finished", ("service", "converged"),
    ).inc(1, service=service, converged=str(converged).lower())


def _record_budget_trip(service: str, trip: SimBudgetExceededError) -> None:
    """Account a watchdog trip inside a tuning loop."""
    session = current_session()
    if session is None:
        return
    session.registry.counter(
        "ditto_tune_budget_trips_total",
        "simulation watchdog trips during fine-tuning",
        ("service", "budget"),
    ).inc(1, service=service, budget=trip.budget or "unknown")


def _errors(
    target: ServiceMetrics,
    measured: ServiceMetrics,
    metrics: Tuple[str, ...],
) -> Dict[str, float]:
    errors = {}
    for name in metrics:
        errors[name] = relative_error(target.metric(name),
                                      measured.metric(name))
    return errors


def fine_tune(
    features: ServiceFeatures,
    platform_config: ExperimentConfig,
    load: Optional[LoadSpec] = None,
    base_config: Optional[GeneratorConfig] = None,
    max_iterations: int = DEFAULT_MAX_TUNE_ITERATIONS,
    tolerance: float = 0.05,
    metrics: Tuple[str, ...] = ("ipc", "branch", "l1i", "l1d", "llc"),
    cache: Optional[ExperimentCache] = None,
) -> FineTuneResult:
    """Calibrate generator knobs against the profiled target counters.

    ``max_iterations`` defaults to :data:`DEFAULT_MAX_TUNE_ITERATIONS`
    (the paper's "within ten iterations" guidance). Pass an
    :class:`~repro.runtime.expcache.ExperimentCache` as ``cache`` to
    memoize the per-iteration measurement runs: iterations whose knob
    vector repeats an earlier candidate (convergence plateaus, damped
    oscillation) are then served without re-simulating.
    """
    if features.target_counters is None:
        raise ConfigurationError(
            f"{features.service}: no target counters to tune against")
    if max_iterations < 1:
        raise ConfigurationError("max_iterations must be >= 1")
    target = features.target_counters
    config = base_config if base_config is not None else GeneratorConfig()
    if load is None:
        if features.observed_closed_loop:
            # Closed-loop-profiled services saturate at their observed
            # throughput; tuning open-loop at that rate would sit exactly
            # on the hockey stick. Reuse the closed-loop discipline.
            load = LoadSpec.closed_loop(max(1, features.observed_connections))
        else:
            load = LoadSpec.open_loop(max(100.0, features.observed_qps))
    knobs = config.knobs
    history: List[float] = []
    best_knobs = knobs
    best_error = math.inf
    final_errors: Dict[str, float] = {}
    iterations_used = 0
    for iteration in range(max_iterations):
        iterations_used = iteration + 1
        config = replace(config, knobs=knobs)
        try:
            with span("tune_iteration", category="finetune",
                      service=features.service, iteration=iteration) as tick:
                measured, _ = _measure(features, config, platform_config,
                                       load, cache=cache)
                errors = _errors(target, measured, metrics)
                finite = [e for e in errors.values() if e != math.inf]
                mean_error = (sum(finite) / len(finite) if finite
                              else math.inf)
                tick.set(mean_error=(mean_error if mean_error != math.inf
                                     else None))
        except SimBudgetExceededError as trip:
            # A watchdog tripped mid-calibration (a knob candidate drove
            # the simulation into a budget). With at least one measured
            # candidate in hand, keep the best of them — a degraded but
            # usable result the cloner's gate can still judge; on the
            # very first iteration there is nothing to salvage, so the
            # trip propagates for remediation to handle.
            _record_budget_trip(features.service, trip)
            if iteration == 0:
                raise
            _record_tuning(features.service, iterations_used,
                           converged=False)
            return FineTuneResult(
                knobs=best_knobs, iterations=iterations_used,
                final_errors=final_errors, error_history=history,
                converged=False,
            )
        history.append(mean_error)
        final_errors = errors
        if mean_error < best_error:
            best_error = mean_error
            best_knobs = knobs
        if mean_error <= tolerance:
            _record_tuning(features.service, iterations_used,
                           converged=True)
            return FineTuneResult(
                knobs=knobs, iterations=iterations_used,
                final_errors=errors, error_history=history, converged=True,
            )
        # Damped multiplicative updates toward each paired target.
        updates = {}
        for metric, knob in KNOB_FOR_METRIC.items():
            if metric not in errors:
                continue
            measured_value = measured.metric(metric)
            target_value = target.metric(metric)
            if measured_value <= 0 or target_value <= 0:
                continue
            ratio = (target_value / measured_value) ** DAMPING
            current = getattr(knobs, knob)
            updates[knob] = float(min(KNOB_RANGE[1],
                                      max(KNOB_RANGE[0], current * ratio)))
        # IPC residual steers the dependency/ILP group: a too-fast clone
        # gets its dependency distances compressed (and vice versa),
        # which is faithful — instruction counts stay profiled.
        if "ipc" in errors and measured.ipc > 0 and target.ipc > 0:
            # The ILP lever is shallow (distances only matter once they
            # compress below the issue window), so it gets an aggressive
            # update exponent.
            ratio = (measured.ipc / target.ipc) ** (3 * DAMPING)
            updates["ilp_scale"] = float(min(
                KNOB_RANGE[1],
                max(KNOB_RANGE[0], knobs.ilp_scale * ratio)))
        knobs = knobs.with_(**updates)
    _record_tuning(features.service, iterations_used, converged=False)
    return FineTuneResult(
        knobs=best_knobs, iterations=iterations_used,
        final_errors=final_errors, error_history=history, converged=False,
    )
