"""Parallel per-tier cloning pipeline.

Once profiling has produced per-service artifacts and RPCs have been
stripped for stand-alone tuning, Ditto's Fig. 3 pipeline is
embarrassingly parallel across tiers (§4.5: each tier's knobs calibrate
independently). This module fans the per-tier stage — feature
extraction → fine-tune → body/skeleton generation — out across a
:mod:`concurrent.futures` executor.

Determinism: a tier's outcome is a pure function of its
:class:`TierTask` payload. Every random stream a tier consumes is
derived from the task's own seeds via the named-stream discipline in
:mod:`repro.util.rng` (see :func:`derive_tier_seed`), never from shared
mutable state, so serial, threaded and process-pool runs produce
bit-identical clones and execution order cannot leak between tiers.

Executor selection: ``"process"`` (a :class:`ProcessPoolExecutor`, the
default on multi-core hosts), ``"thread"`` (in-process, useful when task
payloads are large relative to tier compute), ``"serial"`` (plain loop,
also the single-core/single-tier fallback), or ``"auto"`` (process pool
whenever it can actually help: more than one tier and more than one
CPU).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.app.service import ServiceSpec
from repro.core.body_gen import GeneratorConfig, generate_program
from repro.core.features import ServiceFeatures, extract_service_features
from repro.core.finetune import (
    DEFAULT_MAX_TUNE_ITERATIONS,
    FineTuneResult,
    fine_tune,
)
from repro.core.skeleton_gen import generate_skeleton
from repro.profiling.artifacts import ServiceArtifacts
from repro.runtime.expcache import (
    DEFAULT_CACHE_ENTRIES,
    CacheStats,
    ExperimentCache,
)
from repro.runtime.experiment import ExperimentConfig
from repro.telemetry.context import current_session
from repro.telemetry.session import Telemetry, WorkerTelemetry
from repro.telemetry.spans import span
from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed

__all__ = [
    "EXECUTOR_MODES",
    "TierOutcome",
    "TierTask",
    "clone_tier",
    "derive_tier_seed",
    "resolve_executor",
    "run_tier_pipeline",
]

EXECUTOR_MODES = ("auto", "process", "thread", "serial")


def derive_tier_seed(root_seed: int, tier: str, stage: str) -> int:
    """The seed one tier's ``stage`` uses, derived from the clone seed.

    Stable across runs/platforms and independent per (tier, stage), so a
    tier draws the same streams no matter which worker runs it, in which
    order, or alongside which siblings.
    """
    return derive_seed(root_seed, "pipeline", tier, stage)


@dataclass(frozen=True)
class TierTask:
    """Everything one tier's pipeline stage needs (picklable payload)."""

    artifacts: ServiceArtifacts
    generator_config: GeneratorConfig
    #: stand-alone tuning platform; ``None`` skips fine-tuning
    tune_config: Optional[ExperimentConfig] = None
    max_tune_iterations: int = DEFAULT_MAX_TUNE_ITERATIONS
    cache_max_entries: int = DEFAULT_CACHE_ENTRIES
    #: record spans/metrics for this tier (set when the clone session
    #: carries a :class:`~repro.telemetry.session.Telemetry`); workers
    #: cannot see the parent's session, so the request must travel in
    #: the task payload
    collect_telemetry: bool = False


@dataclass
class TierOutcome:
    """What one tier's pipeline stage produced."""

    service: str
    features: ServiceFeatures
    spec: ServiceSpec
    tuning: Optional[FineTuneResult]
    wall_clock_s: float
    cache_stats: CacheStats
    #: spans + metrics recorded by a worker-local session, for the
    #: parent to absorb; None when telemetry was off or the tier ran
    #: under the parent's own session (serial mode)
    telemetry: Optional[WorkerTelemetry] = None


def clone_tier(task: TierTask) -> TierOutcome:
    """Run one tier through feature extraction → fine-tune → generation.

    Pure function of ``task``; safe to run in any executor worker.
    Telemetry observes but never steers: every random stream is derived
    from the task's seeds, so outcomes are bit-identical with
    ``collect_telemetry`` on or off.
    """
    worker_session: Optional[Telemetry] = None
    ambient = current_session()
    foreign = ambient is None or ambient.pid != os.getpid()
    if task.collect_telemetry and foreign:
        # Running in an executor worker process: collect into a local
        # session and ship it back with the outcome. The pid check
        # matters on fork-start pools, where the child inherits the
        # parent's ambient session but anything recorded into that copy
        # would be lost. Serial and thread modes see the parent's own
        # session and record straight into it.
        worker_session = Telemetry.for_worker()
        worker_session.activate()
    try:
        outcome = _clone_tier(task)
    finally:
        if worker_session is not None:
            worker_session.deactivate()
    if worker_session is not None:
        outcome.telemetry = worker_session.payload()
    return outcome


def _clone_tier(task: TierTask) -> TierOutcome:
    service = task.artifacts.service
    started = time.perf_counter()
    with span(f"tier:{service}", category="tier"):
        with span("feature_extraction", category="tier", service=service):
            features = extract_service_features(task.artifacts)
        config = task.generator_config
        cache = ExperimentCache(max_entries=task.cache_max_entries,
                                name=service)
        tuning: Optional[FineTuneResult] = None
        if task.tune_config is not None:
            with span("fine_tune", category="tier", service=service):
                tuning = fine_tune(
                    features,
                    platform_config=task.tune_config,
                    base_config=config,
                    max_iterations=task.max_tune_iterations,
                    cache=cache,
                )
            config = replace(config, knobs=tuning.knobs)
        with span("generation", category="tier", service=service):
            program, files = generate_program(features, config)
            skeleton = generate_skeleton(features.threads, features.network)
        spec = ServiceSpec(
            name=features.service,
            skeleton=skeleton,
            program=program,
            request_mix=dict(features.handler_mix) or None,
            files=files,
        )
    return TierOutcome(
        service=features.service,
        features=features,
        spec=spec,
        tuning=tuning,
        wall_clock_s=time.perf_counter() - started,
        cache_stats=cache.stats,
    )


def resolve_executor(
    executor: str = "auto",
    *,
    n_tasks: int,
    max_workers: Optional[int] = None,
) -> str:
    """Map an executor request to the concrete mode that will run.

    ``"auto"`` picks ``"process"`` when fan-out can help (more than one
    task, more than one CPU, more than one worker allowed) and
    ``"serial"`` otherwise. Explicit modes are honoured as-is.
    """
    if executor not in EXECUTOR_MODES:
        raise ConfigurationError(
            f"unknown executor {executor!r}; expected one of {EXECUTOR_MODES}")
    if executor != "auto":
        return executor
    cpus = os.cpu_count() or 1
    workers = max_workers if max_workers is not None else cpus
    if n_tasks > 1 and cpus > 1 and workers > 1:
        return "process"
    return "serial"


def _make_pool(mode: str, max_workers: int) -> Executor:
    if mode == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    return ThreadPoolExecutor(max_workers=max_workers)


def run_tier_pipeline(
    tasks: Sequence[TierTask],
    *,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Tuple[List[TierOutcome], str]:
    """Fan ``tasks`` out across the chosen executor.

    Returns ``(outcomes, resolved_mode)`` with outcomes in task order
    regardless of completion order, so downstream assembly (and the
    clones themselves) cannot depend on scheduling.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError("max_workers must be >= 1")
    mode = resolve_executor(executor, n_tasks=len(tasks),
                            max_workers=max_workers)
    with span("tier_pipeline", executor=mode, tiers=len(tasks)):
        if mode == "serial" or not tasks:
            return [clone_tier(task) for task in tasks], "serial"
        workers = (max_workers if max_workers is not None
                   else (os.cpu_count() or 1))
        workers = max(1, min(workers, len(tasks)))
        with _make_pool(mode, workers) as pool:
            outcomes = list(pool.map(clone_tier, tasks))
        return outcomes, mode
