"""Parallel per-tier cloning pipeline.

Once profiling has produced per-service artifacts and RPCs have been
stripped for stand-alone tuning, Ditto's Fig. 3 pipeline is
embarrassingly parallel across tiers (§4.5: each tier's knobs calibrate
independently). This module fans the per-tier stage — feature
extraction → fine-tune → body/skeleton generation — out across a
:mod:`concurrent.futures` executor.

Determinism: a tier's outcome is a pure function of its
:class:`TierTask` payload. Every random stream a tier consumes is
derived from the task's own seeds via the named-stream discipline in
:mod:`repro.util.rng` (see :func:`derive_tier_seed`), never from shared
mutable state, so serial, threaded and process-pool runs produce
bit-identical clones and execution order cannot leak between tiers.

Executor selection: ``"process"`` (a :class:`ProcessPoolExecutor`, the
default on multi-core hosts), ``"thread"`` (in-process, useful when task
payloads are large relative to tier compute), ``"serial"`` (plain loop,
also the single-core/single-tier fallback), or ``"auto"`` (process pool
whenever it can actually help: more than one tier and more than one
CPU).

Robustness: a tier that raises is retried up to ``tier_retries`` times
before the pipeline gives up with a
:class:`~repro.util.errors.TierExecutionError` naming the tier and
carrying every sibling outcome completed so far. A broken worker pool
(a worker killed mid-task) degrades the executor — process → thread →
serial — and re-runs only the unfinished tiers. With ``checkpoint_dir``
set, each finished :class:`TierOutcome` is pickled under a key derived
from the task's :func:`~repro.util.spec_hash.stable_digest`, so a
killed pipeline resumes without re-running completed tiers (and a
*changed* task never matches a stale checkpoint).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
    FIRST_COMPLETED,
)
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.app.service import ServiceSpec
from repro.core.body_gen import GeneratorConfig, generate_program
from repro.core.features import ServiceFeatures, extract_service_features
from repro.core.finetune import (
    DEFAULT_MAX_TUNE_ITERATIONS,
    FineTuneResult,
    fine_tune,
)
from repro.core.skeleton_gen import generate_skeleton
from repro.profiling.artifacts import ServiceArtifacts
from repro.runtime.expcache import (
    DEFAULT_CACHE_ENTRIES,
    CacheStats,
    ExperimentCache,
    SharedExperimentCache,
)
from repro.runtime.experiment import ExperimentConfig
from repro.telemetry.context import current_session
from repro.telemetry.session import Telemetry, WorkerTelemetry
from repro.telemetry.spans import span
from repro.util.errors import ArtifactIntegrityError, ConfigurationError, \
    TierExecutionError
from repro.util.rng import derive_seed
from repro.util.spec_hash import stable_digest
from repro.validation import integrity

__all__ = [
    "EXECUTOR_MODES",
    "TierCheckpoint",
    "TierOutcome",
    "TierTask",
    "clone_tier",
    "derive_tier_seed",
    "resolve_executor",
    "run_tier_pipeline",
]

EXECUTOR_MODES = ("auto", "process", "thread", "serial")

#: fallback order when a pool breaks mid-run: each mode degrades to the
#: next-safer one (threads share the parent process; serial needs no
#: pool at all, so it can never break)
_DEGRADATION = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}


def derive_tier_seed(root_seed: int, tier: str, stage: str) -> int:
    """The seed one tier's ``stage`` uses, derived from the clone seed.

    Stable across runs/platforms and independent per (tier, stage), so a
    tier draws the same streams no matter which worker runs it, in which
    order, or alongside which siblings.
    """
    return derive_seed(root_seed, "pipeline", tier, stage)


@dataclass(frozen=True)
class TierTask:
    """Everything one tier's pipeline stage needs (picklable payload)."""

    artifacts: ServiceArtifacts
    generator_config: GeneratorConfig
    #: stand-alone tuning platform; ``None`` skips fine-tuning
    tune_config: Optional[ExperimentConfig] = None
    max_tune_iterations: int = DEFAULT_MAX_TUNE_ITERATIONS
    cache_max_entries: int = DEFAULT_CACHE_ENTRIES
    #: record spans/metrics for this tier (set when the clone session
    #: carries a :class:`~repro.telemetry.session.Telemetry`); workers
    #: cannot see the parent's session, so the request must travel in
    #: the task payload
    collect_telemetry: bool = False
    #: directory of a fleet-wide digest-keyed experiment store (see
    #: :class:`~repro.runtime.expcache.SharedExperimentCache`); ``None``
    #: keeps the historical private in-memory cache. Results are
    #: bit-identical either way — the store only changes *where* a
    #: memoized measurement is found.
    shared_cache_dir: Optional[str] = None


@dataclass
class TierOutcome:
    """What one tier's pipeline stage produced."""

    service: str
    features: ServiceFeatures
    spec: ServiceSpec
    tuning: Optional[FineTuneResult]
    wall_clock_s: float
    cache_stats: CacheStats
    #: spans + metrics recorded by a worker-local session, for the
    #: parent to absorb; None when telemetry was off or the tier ran
    #: under the parent's own session (serial mode)
    telemetry: Optional[WorkerTelemetry] = None


def clone_tier(task: TierTask) -> TierOutcome:
    """Run one tier through feature extraction → fine-tune → generation.

    Pure function of ``task``; safe to run in any executor worker.
    Telemetry observes but never steers: every random stream is derived
    from the task's seeds, so outcomes are bit-identical with
    ``collect_telemetry`` on or off.
    """
    worker_session: Optional[Telemetry] = None
    ambient = current_session()
    foreign = ambient is None or ambient.pid != os.getpid()
    if task.collect_telemetry and foreign:
        # Running in an executor worker process: collect into a local
        # session and ship it back with the outcome. The pid check
        # matters on fork-start pools, where the child inherits the
        # parent's ambient session but anything recorded into that copy
        # would be lost. Serial and thread modes see the parent's own
        # session and record straight into it.
        worker_session = Telemetry.for_worker()
        worker_session.activate()
    try:
        outcome = _clone_tier(task)
    finally:
        if worker_session is not None:
            worker_session.deactivate()
    if worker_session is not None:
        outcome.telemetry = worker_session.payload()
    return outcome


def _clone_tier(task: TierTask) -> TierOutcome:
    service = task.artifacts.service
    started = time.perf_counter()
    with span(f"tier:{service}", category="tier"):
        with span("feature_extraction", category="tier", service=service):
            features = extract_service_features(task.artifacts)
        config = task.generator_config
        if task.shared_cache_dir is not None:
            cache: ExperimentCache = SharedExperimentCache(
                task.shared_cache_dir, max_entries=task.cache_max_entries,
                name=service)
        else:
            cache = ExperimentCache(max_entries=task.cache_max_entries,
                                    name=service)
        tuning: Optional[FineTuneResult] = None
        if task.tune_config is not None:
            with span("fine_tune", category="tier", service=service):
                tuning = fine_tune(
                    features,
                    platform_config=task.tune_config,
                    base_config=config,
                    max_iterations=task.max_tune_iterations,
                    cache=cache,
                )
            config = replace(config, knobs=tuning.knobs)
        with span("generation", category="tier", service=service):
            program, files = generate_program(features, config)
            skeleton = generate_skeleton(features.threads, features.network)
        spec = ServiceSpec(
            name=features.service,
            skeleton=skeleton,
            program=program,
            request_mix=dict(features.handler_mix) or None,
            files=files,
        )
    return TierOutcome(
        service=features.service,
        features=features,
        spec=spec,
        tuning=tuning,
        wall_clock_s=time.perf_counter() - started,
        cache_stats=cache.stats,
    )


def resolve_executor(
    executor: str = "auto",
    *,
    n_tasks: int,
    max_workers: Optional[int] = None,
) -> str:
    """Map an executor request to the concrete mode that will run.

    ``"auto"`` picks ``"process"`` when fan-out can help (more than one
    task, more than one CPU, more than one worker allowed) and
    ``"serial"`` otherwise. Explicit modes are honoured as-is.
    """
    if executor not in EXECUTOR_MODES:
        raise ConfigurationError(
            f"unknown executor {executor!r}; expected one of {EXECUTOR_MODES}")
    if executor != "auto":
        return executor
    cpus = os.cpu_count() or 1
    workers = max_workers if max_workers is not None else cpus
    if n_tasks > 1 and cpus > 1 and workers > 1:
        return "process"
    return "serial"


def _make_pool(mode: str, max_workers: int) -> Executor:
    if mode == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    return ThreadPoolExecutor(max_workers=max_workers)


class TierCheckpoint:
    """Durable per-tier outcomes keyed by the task's structural digest.

    Each finished :class:`TierOutcome` is pickled to
    ``<dir>/<service>-<digest16>.pkl`` the moment its tier completes, so
    a pipeline killed midway resumes from the same directory without
    re-running finished tiers. The key covers every field of the
    :class:`TierTask` (artifacts, generator config, tune config, seeds),
    so any change to what a tier is asked to do misses the stale entry
    instead of resurrecting it.

    Integrity: checkpoints are digest-stamped envelopes (see
    :mod:`repro.validation.integrity`) written atomically. A corrupted
    or truncated file is **quarantined** to ``<name>.pkl.quarantined``
    and counted in telemetry, then treated as a miss — the tier simply
    re-runs; it is never silently resumed from bad bytes. Files from
    before the envelope format (or foreign files) are plain misses.
    """

    #: schema name stamped into every checkpoint envelope
    SCHEMA = "tier-checkpoint"
    #: payload schema version (the pickled TierOutcome layout)
    SCHEMA_VERSION = 1

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path(self, task: TierTask) -> str:
        """The checkpoint file this task would load from / save to."""
        digest = stable_digest(task)[:16]
        return os.path.join(
            self.directory, f"{task.artifacts.service}-{digest}.pkl")

    def load(self, task: TierTask) -> Optional[TierOutcome]:
        """The saved outcome for ``task``, or None on miss/corruption.

        Corruption is never silent: a damaged checkpoint is moved to
        ``<path>.quarantined`` (evidence for inspection), reported via
        the ``ditto_artifact_quarantines_total`` telemetry counter, and
        only then treated as a miss. Legacy pre-envelope pickles lack
        the artifact magic and are quietly missed, not quarantined.
        """
        path = self.path(task)
        try:
            with open(path, "rb") as handle:
                prefix = handle.read(len(integrity.MAGIC))
        except OSError:
            return None
        if prefix != integrity.MAGIC:
            # Pre-envelope or foreign file: a miss, not corruption.
            return None
        try:
            outcome = integrity.load_object(
                path, schema=self.SCHEMA, max_version=self.SCHEMA_VERSION)
        except ArtifactIntegrityError:
            return None
        return outcome if isinstance(outcome, TierOutcome) else None

    def save(self, task: TierTask, outcome: TierOutcome) -> None:
        """Persist ``outcome`` atomically in a digest-stamped envelope."""
        integrity.save_object(self.path(task), outcome, schema=self.SCHEMA,
                              version=self.SCHEMA_VERSION)


def _count_pipeline_event(name: str, help_text: str, **labels: str) -> None:
    session = current_session()
    if session is None:
        return
    session.registry.counter(
        name, help_text, tuple(sorted(labels))).inc(1, **labels)


class _PipelineRun:
    """Mutable state for one pipeline invocation (retry bookkeeping)."""

    def __init__(
        self,
        tasks: Sequence[TierTask],
        tier_fn: Callable[[TierTask], TierOutcome],
        tier_retries: int,
        checkpoint: Optional[TierCheckpoint],
    ) -> None:
        self.tasks = tasks
        self.tier_fn = tier_fn
        self.tier_retries = tier_retries
        self.checkpoint = checkpoint
        self.outcomes: List[Optional[TierOutcome]] = [None] * len(tasks)
        self.failures: Dict[int, int] = {}
        self.pending: List[int] = []
        for index, task in enumerate(tasks):
            cached = checkpoint.load(task) if checkpoint is not None else None
            if cached is not None:
                self.outcomes[index] = cached
            else:
                self.pending.append(index)
        self.resumed = len(tasks) - len(self.pending)

    def completed(self) -> Dict[str, TierOutcome]:
        return {outcome.service: outcome
                for outcome in self.outcomes if outcome is not None}

    def complete(self, index: int, outcome: TierOutcome) -> None:
        self.outcomes[index] = outcome
        self.pending.remove(index)
        if self.checkpoint is not None:
            self.checkpoint.save(self.tasks[index], outcome)

    def note_failure(self, index: int, error: Exception) -> None:
        """Record one failed attempt; raise once the tier is exhausted."""
        self.failures[index] = self.failures.get(index, 0) + 1
        tier = self.tasks[index].artifacts.service
        if self.failures[index] > self.tier_retries:
            raise TierExecutionError(
                f"tier {tier!r} failed after "
                f"{self.failures[index]} attempt(s): {error}",
                tier=tier,
                attempts=self.failures[index],
                outcomes=self.completed(),
                last_error=error,
            ) from error
        _count_pipeline_event(
            "ditto_tier_retries_total",
            "per-tier pipeline attempts retried after a failure",
            tier=tier)

    def run_serial(self) -> None:
        for index in list(self.pending):
            while True:
                try:
                    outcome = self.tier_fn(self.tasks[index])
                except Exception as error:  # noqa: BLE001 — retry boundary
                    self.note_failure(index, error)
                    continue
                break
            self.complete(index, outcome)

    def run_pool(self, mode: str, workers: int) -> None:
        """Drain pending tiers through a pool; checkpoint as they finish.

        Raises :class:`concurrent.futures.BrokenExecutor` when the pool
        dies (e.g. a worker process was killed) — the caller degrades
        the mode and re-runs whatever is still pending.
        """
        with _make_pool(mode, workers) as pool:
            active = {pool.submit(self.tier_fn, self.tasks[index]): index
                      for index in self.pending}
            while active:
                done, _ = wait(set(active), return_when=FIRST_COMPLETED)
                for future in done:
                    index = active.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenExecutor:
                        raise
                    except Exception as error:  # noqa: BLE001
                        self.note_failure(index, error)
                        active[pool.submit(
                            self.tier_fn, self.tasks[index])] = index
                        continue
                    self.complete(index, outcome)


def run_tier_pipeline(
    tasks: Sequence[TierTask],
    *,
    executor: str = "auto",
    max_workers: Optional[int] = None,
    tier_fn: Callable[[TierTask], TierOutcome] = clone_tier,
    tier_retries: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[List[TierOutcome], str]:
    """Fan ``tasks`` out across the chosen executor.

    Returns ``(outcomes, resolved_mode)`` with outcomes in task order
    regardless of completion order, so downstream assembly (and the
    clones themselves) cannot depend on scheduling.

    ``tier_fn`` is the per-tier stage (default :func:`clone_tier`); it
    must be picklable for pool modes. A tier that raises is re-run up
    to ``tier_retries`` extra times; exhaustion raises
    :class:`~repro.util.errors.TierExecutionError` carrying every
    sibling outcome that did complete. A broken pool (worker killed)
    degrades process → thread → serial and re-runs only unfinished
    tiers — ``resolved_mode`` reports the mode that actually finished
    the work. ``checkpoint_dir`` persists each outcome as it lands so
    an interrupted run resumes from disk (see :class:`TierCheckpoint`).
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError("max_workers must be >= 1")
    if not isinstance(tier_retries, int) or isinstance(tier_retries, bool) \
            or tier_retries < 0:
        raise ConfigurationError(
            f"tier_retries must be an int >= 0, got {tier_retries!r}")
    mode = resolve_executor(executor, n_tasks=len(tasks),
                            max_workers=max_workers)
    checkpoint = (TierCheckpoint(checkpoint_dir)
                  if checkpoint_dir is not None else None)
    state = _PipelineRun(tasks, tier_fn, tier_retries, checkpoint)
    with span("tier_pipeline", executor=mode, tiers=len(tasks),
              resumed=state.resumed):
        if mode == "serial" or not state.pending:
            state.run_serial()
            return list(state.outcomes), "serial"
        workers = (max_workers if max_workers is not None
                   else (os.cpu_count() or 1))
        workers = max(1, min(workers, len(tasks)))
        ladder = _DEGRADATION[mode]
        for rung, current in enumerate(ladder):
            if not state.pending:
                break
            if current == "serial":
                state.run_serial()
                mode = "serial"
                break
            try:
                state.run_pool(current, workers)
                mode = current
                break
            except BrokenExecutor:
                fallback = ladder[rung + 1]
                _count_pipeline_event(
                    "ditto_pipeline_degradations_total",
                    "executor degradations after a broken worker pool",
                    from_mode=current, to_mode=fallback)
                mode = fallback
        return list(state.outcomes), mode
