#!/usr/bin/env python
"""Quickstart: clone Memcached and validate the clone.

The one-screen tour of the public API:

1. build the original application model (the paper's Memcached config);
2. run Ditto: profile at a representative load -> generate -> fine-tune;
3. run original and clone side by side and compare the paper's metrics;
4. peek at the shareable synthetic assembly listing.

Run:  python examples/quickstart.py
"""

from repro.analysis import compare_metrics
from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.core import DittoCloner, emit_assembly
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment


def main() -> None:
    # 1. The original service (we could never share its internals).
    original = Deployment.single(build_memcached())

    # 2. Clone it: profile once at medium load on platform A.
    profiling_load = LoadSpec.open_loop(qps=100_000)
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.02, seed=5)
    cloner = DittoCloner(fine_tune_tiers=True, max_tune_iterations=6)
    result = cloner.clone(original, profiling_load, profiling_config)
    synthetic, report = result.synthetic, result.report
    tuning = report.tuning["memcached"]
    print(f"fine-tuning: {tuning.iterations} iterations, "
          f"final mean error {tuning.mean_error:.1%} "
          f"(converged={tuning.converged})")
    print(f"pipeline: executor={report.executor}, "
          f"cache hits/misses={report.cache_stats.hits}"
          f"/{report.cache_stats.misses}")

    # 3. Validate: run both at the same load and compare counters.
    validation = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=11)
    actual = run_experiment(original, profiling_load, validation)
    synth = run_experiment(synthetic, profiling_load, validation)
    comparison = compare_metrics(actual.service("memcached"),
                                 synth.service("memcached"))
    print()
    print(comparison.table())
    print()
    print(f"{'':16}{'actual':>14}{'synthetic':>14}")
    print(f"{'p99 latency ms':<16}{actual.latency_ms(99):>14.3f}"
          f"{synth.latency_ms(99):>14.3f}")
    print(f"{'net MB/s':<16}"
          f"{actual.net_bandwidth('memcached') / 1e6:>14.1f}"
          f"{synth.net_bandwidth('memcached') / 1e6:>14.1f}")
    print(f"{'throughput':<16}{actual.throughput:>14.0f}"
          f"{synth.throughput:>14.0f}")

    # 4. The artifact you could actually publish.
    listing = emit_assembly(synthetic.services["memcached"].program)
    print("\n--- synthetic assembly listing (first 40 lines) ---")
    print("\n".join(listing.splitlines()[:40]))


if __name__ == "__main__":
    main()
