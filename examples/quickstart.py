#!/usr/bin/env python
"""Quickstart: clone Memcached and validate the clone.

The one-screen tour of the public API:

1. build the original application model (the paper's Memcached config);
2. run Ditto with telemetry on: profile -> generate -> fine-tune;
3. run original and clone side by side and compare the paper's metrics;
4. peek at the shareable synthetic assembly listing;
5. print the telemetry report and save the run + Chrome trace.

Run:  python examples/quickstart.py
"""

import os

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
    emit_assembly,
    run_experiment,
)
from repro.analysis import compare_metrics
from repro.telemetry import Telemetry


def main() -> None:
    # 1. The original service (we could never share its internals).
    original = Deployment.single(build_memcached())

    # 2. Clone it: profile once at medium load on platform A. The
    #    telemetry session observes every pipeline stage (and, below,
    #    the validation runs) without perturbing the clone.
    profiling_load = LoadSpec.open_loop(qps=100_000)
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.02, seed=5)
    telemetry = Telemetry(label="quickstart: memcached clone")
    cloner = DittoCloner(fine_tune_tiers=True, max_tune_iterations=6,
                         telemetry=telemetry)
    result = cloner.clone(CloneRequest(deployment=original,
                                       load=profiling_load,
                                       config=profiling_config))
    synthetic, report = result.synthetic, result.report
    tuning = report.tuning["memcached"]
    print(f"fine-tuning: {tuning.iterations} iterations, "
          f"final mean error {tuning.mean_error:.1%} "
          f"(converged={tuning.converged})")
    print(f"pipeline: executor={report.executor}, "
          f"cache hits/misses={report.cache_stats.hits}"
          f"/{report.cache_stats.misses}")

    # 3. Validate: run both at the same load and compare counters (the
    #    `with telemetry:` block records these runs on the sim timeline
    #    alongside the profiling run).
    validation = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=11)
    with telemetry:
        actual = run_experiment(original, profiling_load, validation)
        synth = run_experiment(synthetic, profiling_load, validation)
    comparison = compare_metrics(actual.service("memcached"),
                                 synth.service("memcached"))
    print()
    print(comparison.table())
    print()
    print(f"{'':16}{'actual':>14}{'synthetic':>14}")
    print(f"{'p99 latency ms':<16}{actual.latency_ms(99):>14.3f}"
          f"{synth.latency_ms(99):>14.3f}")
    print(f"{'net MB/s':<16}"
          f"{actual.net_bandwidth('memcached') / 1e6:>14.1f}"
          f"{synth.net_bandwidth('memcached') / 1e6:>14.1f}")
    print(f"{'throughput':<16}{actual.throughput:>14.0f}"
          f"{synth.throughput:>14.0f}")

    # 4. The artifact you could actually publish.
    listing = emit_assembly(synthetic.services["memcached"].program)
    print("\n--- synthetic assembly listing (first 40 lines) ---")
    print("\n".join(listing.splitlines()[:40]))

    # 5. Where did the time go? The telemetry session summarizes the
    #    pipeline stages, cache effectiveness, and the sim timeline,
    #    and exports a Perfetto-loadable Chrome trace.
    print("\n--- telemetry ---")
    print(telemetry.report_table())
    out_dir = os.environ.get("DITTO_TELEMETRY_DIR", ".")
    run_path = telemetry.save(os.path.join(out_dir, "quickstart_run.json"))
    trace_path = telemetry.write_chrome_trace(
        os.path.join(out_dir, "quickstart_trace.json"))
    print(f"\nsaved run -> {run_path} "
          f"(summarize: python -m repro.telemetry.report {run_path})")
    print(f"chrome trace -> {trace_path} (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
