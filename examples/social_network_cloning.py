#!/usr/bin/env python
"""Clone the 14-tier Social Network end to end (the Fig. 6 scenario).

Ditto first reconstructs the RPC dependency DAG from distributed traces,
then clones every tier (skeleton + body), producing a synthetic
deployment in which *every individual microservice has been replaced*.
The end-to-end latency of the synthetic graph tracks the original across
a QPS sweep.

Run:  python examples/social_network_cloning.py
"""

from repro import (
    CloneRequest,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    run_experiment,
    social_network_deployment,
)
from repro.profiling import ProfilingBudget


def main() -> None:
    original = social_network_deployment()
    profiling_load = LoadSpec.open_loop(qps=1000)
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.05, seed=5)
    # Per-tier fine tuning is disabled to keep the example fast; the
    # structural clone already tracks end-to-end behaviour well.
    cloner = DittoCloner(
        fine_tune_tiers=False,
        budget=ProfilingBudget(sampled_requests=8,
                               profile_duration_s=0.05),
    )
    result = cloner.clone(CloneRequest(deployment=original,
                                       load=profiling_load,
                                       config=profiling_config))
    synthetic, report = result.synthetic, result.report

    topology = report.topology
    print(f"reconstructed topology: {topology.tier_count} tiers, "
          f"entry = {topology.entry_service}")
    slowest = max(report.tier_seconds.items(), key=lambda kv: kv[1])
    print(f"pipeline: executor={report.executor}; slowest tier "
          f"{slowest[0]} ({slowest[1]:.2f}s of "
          f"{sum(report.tier_seconds.values()):.2f}s total tier work)")
    for src, dst, calls in sorted(topology.edges):
        print(f"  {src} -> {dst} ({calls} calls observed)")

    print("\nend-to-end latency, original vs synthetic (every tier "
          "replaced):")
    print(f"{'QPS':>6}{'actual p50':>12}{'synth p50':>12}"
          f"{'actual p99':>12}{'synth p99':>12}")
    for qps in (400, 800, 1200, 1600, 2000):
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=11)
        actual = run_experiment(original, LoadSpec.open_loop(qps), config)
        synth = run_experiment(synthetic, LoadSpec.open_loop(qps), config)
        print(f"{qps:>6}"
              f"{actual.latency_ms(50):>12.2f}{synth.latency_ms(50):>12.2f}"
              f"{actual.latency_ms(99):>12.2f}{synth.latency_ms(99):>12.2f}")

    print("\nper-tier counters at 1000 QPS (the paper's featured tiers):")
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05, seed=11)
    actual = run_experiment(original, LoadSpec.open_loop(1000), config)
    synth = run_experiment(synthetic, LoadSpec.open_loop(1000), config)
    print(f"{'tier':<24}{'':>10}{'IPC':>8}{'l1i':>8}{'llc':>8}")
    for tier in ("text-service", "social-graph-service"):
        for tag, result in (("actual", actual), ("synthetic", synth)):
            metrics = result.service(tier)
            print(f"{tier:<24}{tag:>10}{metrics.ipc:>8.3f}"
                  f"{metrics.l1i_miss_rate:>8.3f}"
                  f"{metrics.llc_miss_rate:>8.3f}")


if __name__ == "__main__":
    main()
