#!/usr/bin/env python
"""Power-management study with a synthetic Memcached (the Fig. 11 scenario).

A cloud provider wants to know which (core count, frequency) settings
keep Memcached under a 1 ms p99 QoS — without giving the hardware vendor
its source. The vendor runs the *clone* across the DVFS grid; cells the
clone marks infeasible match the original's.

Run:  python examples/power_management_study.py
"""

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
    run_experiment,
)

QOS_MS = 1.0
LOAD = LoadSpec.open_loop(230_000)
CORES = (4, 8, 12, 16)
FREQUENCIES = (1.1, 1.5, 1.9, 2.1)


def heatmap(deployment) -> dict:
    cells = {}
    for cores in CORES:
        for freq in FREQUENCIES:
            config = ExperimentConfig(
                platform=PLATFORM_A, duration_s=0.03, seed=11,
                cores=cores, frequency_ghz=freq,
            )
            result = run_experiment(deployment, LOAD, config)
            cells[(cores, freq)] = result.latency_ms(99)
    return cells


def render(title: str, cells: dict) -> None:
    print(f"\n{title}  (p99 ms; X = misses the {QOS_MS} ms QoS)")
    header = "".join(f"{c:>9}" for c in CORES)
    print(f"{'GHz/cores':<10}{header}")
    for freq in FREQUENCIES:
        row = ""
        for cores in CORES:
            value = cells[(cores, freq)]
            mark = "X" if value > QOS_MS else " "
            row += f"{value:>8.2f}{mark}"
        print(f"{freq:<10}{row}")


def main() -> None:
    original = Deployment.single(build_memcached(worker_threads=16))
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.02, seed=5)
    synthetic = DittoCloner(
        fine_tune_tiers=True, max_tune_iterations=4,
    ).clone(CloneRequest(deployment=original,
                         load=LoadSpec.open_loop(100_000),
                         config=profiling_config)).synthetic
    actual_cells = heatmap(original)
    synth_cells = heatmap(synthetic)
    render("actual Memcached", actual_cells)
    render("synthetic Memcached", synth_cells)
    agreements = sum(
        (actual_cells[key] > QOS_MS) == (synth_cells[key] > QOS_MS)
        for key in actual_cells
    )
    print(f"\nQoS-feasibility agreement: {agreements}/{len(actual_cells)} "
          "grid cells")


if __name__ == "__main__":
    main()
