#!/usr/bin/env python
"""Cross-platform portability study (the Fig. 7 scenario).

Profiles Memcached and Redis **on platform A only**, then runs original
and clone on platforms A, B and C. The point (§6.2.2): the clone is built
from platform-independent features, so it reacts to the platform change —
smaller L2s, older cores, slower disks — the same way the original does,
with no reprofiling.

Run:  python examples/cross_platform_study.py
"""

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    PLATFORM_B,
    PLATFORM_C,
    build_memcached,
    build_redis,
    run_experiment,
)

PLATFORMS = (PLATFORM_A, PLATFORM_B, PLATFORM_C)
APPS = {
    "memcached": (build_memcached, LoadSpec.open_loop(60_000)),
    "redis": (build_redis, LoadSpec.closed_loop(4)),
}


def main() -> None:
    for name, (builder, load) in APPS.items():
        original = Deployment.single(builder())
        profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                            duration_s=0.02, seed=5)
        synthetic = DittoCloner(
            fine_tune_tiers=True, max_tune_iterations=4,
        ).clone(CloneRequest(deployment=original, load=load,
                             config=profiling_config)).synthetic
        print(f"\n=== {name} (profiled on A only) ===")
        print(f"{'platform':<10}{'':>10}{'IPC':>8}{'branch':>8}"
              f"{'l1i':>8}{'l2':>8}{'llc':>8}{'p99 ms':>9}")
        for platform in PLATFORMS:
            config = ExperimentConfig(platform=platform, duration_s=0.04,
                                      seed=11)
            for tag, deployment in (("actual", original),
                                    ("synthetic", synthetic)):
                result = run_experiment(deployment, load, config)
                metrics = result.service(name)
                print(f"{platform.name:<10}{tag:>10}"
                      f"{metrics.ipc:>8.3f}"
                      f"{metrics.branch_mispredict_rate:>8.3f}"
                      f"{metrics.l1i_miss_rate:>8.3f}"
                      f"{metrics.l2_miss_rate:>8.3f}"
                      f"{metrics.llc_miss_rate:>8.3f}"
                      f"{result.latency_ms(99):>9.3f}")


if __name__ == "__main__":
    main()
