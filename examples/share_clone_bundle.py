#!/usr/bin/env python
"""The sharing workflow: provider exports a bundle, vendor runs the clone.

Two roles, strictly separated:

- the **provider** owns the original service, profiles it in-house, and
  exports a versioned JSON *clone bundle* — post-processed statistics and
  the skeleton, nothing else (a confidentiality audit proves no internal
  identifiers leak);
- the **vendor** has only the bundle file. They regenerate a runnable
  synthetic deployment from it and evaluate their platform with it.

Run:  python examples/share_clone_bundle.py
"""

import tempfile
from pathlib import Path

from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.core import (
    audit_bundle_confidentiality,
    deployment_from_bundle,
    extract_service_features,
    save_bundle,
)
from repro.hw import PLATFORM_A, PLATFORM_B
from repro.loadgen import LoadSpec
from repro.profiling import profile_deployment
from repro.runtime import ExperimentConfig, run_experiment


def provider_side(bundle_path: Path) -> Deployment:
    """Profile in-house and export the shareable bundle."""
    original = Deployment.single(build_memcached())
    profile = profile_deployment(
        original, LoadSpec.open_loop(100_000),
        ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5))
    features = extract_service_features(profile.artifacts("memcached"))
    save_bundle({"memcached": features}, bundle_path,
                entry_service="memcached")
    leaks = audit_bundle_confidentiality(bundle_path, original)
    size_kb = bundle_path.stat().st_size / 1024
    print(f"provider: exported {bundle_path.name} ({size_kb:.1f} KB), "
          f"confidentiality audit: {'CLEAN' if not leaks else leaks}")
    return original


def vendor_side(bundle_path: Path) -> None:
    """Regenerate and evaluate, with no access to the original."""
    synthetic = deployment_from_bundle(bundle_path)
    print("vendor: regenerated synthetic deployment from the bundle")
    for platform in (PLATFORM_A, PLATFORM_B):
        result = run_experiment(
            synthetic, LoadSpec.open_loop(60_000),
            ExperimentConfig(platform=platform, duration_s=0.04, seed=11))
        metrics = result.service("memcached")
        print(f"vendor: platform {platform.name}: "
              f"IPC {metrics.ipc:.3f}, l1i {metrics.l1i_miss_rate:.3f}, "
              f"p99 {result.latency_ms(99):.3f} ms")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = Path(tmp) / "memcached_clone.json"
        original = provider_side(bundle_path)
        vendor_side(bundle_path)
        # Sanity: the vendor's numbers track the original's (the provider
        # can verify this before publishing, the vendor never can).
        reference = run_experiment(
            original, LoadSpec.open_loop(60_000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.04,
                             seed=11))
        print(f"provider reference on A: "
              f"IPC {reference.service('memcached').ipc:.3f}, "
              f"p99 {reference.latency_ms(99):.3f} ms")


if __name__ == "__main__":
    main()
