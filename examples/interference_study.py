#!/usr/bin/env python
"""Interference study on NGINX (the Fig. 10 scenario).

The original is profiled **in isolation**, yet its clone reacts to
co-located stressors — SMT sibling spinners, L1d/L2 cache thrashers, an
LLC antagonist, a bandwidth hog — the same way the original does, because
the clone reproduces the original's resource usage patterns (§6.5).

Run:  python examples/interference_study.py
"""

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_nginx,
    run_experiment,
)
from repro.app.stressors import interference_suite, stressor


def main() -> None:
    original = Deployment.single(build_nginx())
    load = LoadSpec.open_loop(15_000)
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.02, seed=5)
    synthetic = DittoCloner(
        fine_tune_tiers=True, max_tune_iterations=4,
    ).clone(CloneRequest(deployment=original, load=load,
                         config=profiling_config)).synthetic

    scenarios = [("none", ())] + [
        (name, (stressor(name),)) for name in interference_suite()
    ]
    print(f"{'interference':<14}{'':>10}{'IPC':>8}{'l1d':>8}{'l2':>8}"
          f"{'llc':>8}{'p99 ms':>9}")
    for name, corunners in scenarios:
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.04,
                                  seed=11, corunners=tuple(corunners))
        for tag, deployment in (("actual", original),
                                ("synthetic", synthetic)):
            result = run_experiment(deployment, load, config)
            metrics = result.service("nginx")
            print(f"{name:<14}{tag:>10}{metrics.ipc:>8.3f}"
                  f"{metrics.l1d_miss_rate:>8.3f}"
                  f"{metrics.l2_miss_rate:>8.3f}"
                  f"{metrics.llc_miss_rate:>8.3f}"
                  f"{result.latency_ms(99):>9.3f}")


if __name__ == "__main__":
    main()
