"""Fault injection: plan validation, injector determinism, run fidelity."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.faults import (
    ANY_NODE,
    CpuStealFault,
    DiskErrorFault,
    DiskSlowdownFault,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    LatencySpikeFault,
    NodeCrashFault,
    PacketLossFault,
)
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, ResilienceConfig, run_experiment
from repro.util.errors import ConfigurationError, FaultInjectionError
from repro.util.spec_hash import stable_digest

DEPLOYMENT = Deployment.single(build_memcached())
LOAD = LoadSpec.open_loop(40_000)

FULL_PLAN = FaultPlan((
    PacketLossFault(rate=0.3, retransmit_delay_s=100e-6),
    LatencySpikeFault(extra_s=50e-6, probability=0.5,
                      window=FaultWindow(0.002, 0.006)),
    DiskErrorFault(rate=0.2),
    DiskSlowdownFault(factor=3.0, window=FaultWindow(0.0, 0.005)),
    CpuStealFault(steal=0.3, window=FaultWindow(0.004, 0.008)),
    NodeCrashFault(node="node0", at_s=0.006, downtime_s=0.002),
))


def _config(seed=7, **kwargs):
    return ExperimentConfig(platform=PLATFORM_A, duration_s=0.01,
                            seed=seed, **kwargs)


def _result_digest(result):
    return stable_digest(
        {name: m.snapshot() for name, m in sorted(result.services.items())},
        tuple(result.latency.samples),
        result.outcome_counts(),
    )


class TestPlanValidation:
    def test_window_half_open(self):
        window = FaultWindow(1.0, 2.0)
        assert window.contains(1.0)
        assert window.contains(1.999)
        assert not window.contains(2.0)
        assert not window.contains(0.999)

    def test_window_rejects_inverted(self):
        with pytest.raises(ConfigurationError):
            FaultWindow(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            FaultWindow(-1.0, 1.0)

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            PacketLossFault(rate=1.5)
        with pytest.raises(ConfigurationError):
            DiskErrorFault(rate=-0.1)
        with pytest.raises(ConfigurationError):
            DiskSlowdownFault(factor=0.5)
        with pytest.raises(ConfigurationError):
            CpuStealFault(steal=1.0)
        with pytest.raises(ConfigurationError):
            LatencySpikeFault(extra_s=0.0)

    def test_crash_needs_concrete_node(self):
        with pytest.raises(ConfigurationError):
            NodeCrashFault(node=ANY_NODE, at_s=0.0, downtime_s=1.0)
        with pytest.raises(ConfigurationError):
            NodeCrashFault(node="node0", at_s=0.0, downtime_s=0.0)

    def test_crash_window_spans_downtime(self):
        crash = NodeCrashFault(node="node0", at_s=1.0, downtime_s=0.5)
        assert crash.window.contains(1.0)
        assert crash.window.contains(1.49)
        assert not crash.window.contains(1.5)

    def test_plan_rejects_foreign_objects(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(("not a fault",))

    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert not plan
        assert bool(FULL_PLAN)
        assert list(plan.matching("packet_loss", "node0")) == []

    def test_matching_scopes(self):
        plan = FaultPlan((PacketLossFault(node="node1", rate=0.5),
                          PacketLossFault(rate=0.1)))
        matches = list(plan.matching("packet_loss", "node1"))
        assert [index for index, _ in matches] == [0, 1]
        assert [index for index, _
                in plan.matching("packet_loss", "node9")] == [1]

    def test_plan_is_stably_hashable(self):
        assert stable_digest(FULL_PLAN) == stable_digest(FULL_PLAN)
        other = FaultPlan((PacketLossFault(rate=0.31),))
        assert stable_digest(other) != stable_digest(
            FaultPlan((PacketLossFault(rate=0.3),)))


class _FakeEnv:
    def __init__(self):
        self.now = 0.0
        self.faults = None


class TestInjectorHooks:
    def test_node_down_only_inside_window(self):
        injector = FaultInjector(FaultPlan((
            NodeCrashFault(node="node0", at_s=1.0, downtime_s=0.5),)),
            seed=1).attach(_FakeEnv())
        injector.env.now = 0.5
        injector.check_node_up("node0")  # no raise
        injector.env.now = 1.2
        assert injector.node_down("node0")
        assert injector.node_down("node0-nic")  # device scope
        assert not injector.node_down("node1")
        with pytest.raises(FaultInjectionError) as excinfo:
            injector.check_node_up("node0-disk")
        assert excinfo.value.kind == "node_down"

    def test_crash_recorded_eagerly_on_attach(self):
        injector = FaultInjector(FaultPlan((
            NodeCrashFault(node="node0", at_s=1.0, downtime_s=0.5),)),
            seed=1).attach(_FakeEnv())
        kinds = [event.kind for event in injector.timeline.events]
        assert kinds == ["node_crash", "node_restart"]

    def test_disk_factor_stacks(self):
        injector = FaultInjector(FaultPlan((
            DiskSlowdownFault(factor=2.0),
            DiskSlowdownFault(node="node0", factor=3.0),)),
            seed=1).attach(_FakeEnv())
        assert injector.disk_factor("node0-disk") == pytest.approx(6.0)
        assert injector.disk_factor("node1-disk") == pytest.approx(2.0)

    def test_cpu_factor(self):
        injector = FaultInjector(FaultPlan((CpuStealFault(steal=0.5),)),
                                 seed=1).attach(_FakeEnv())
        assert injector.cpu_factor("node0-cpu") == pytest.approx(2.0)

    def test_certain_latency_spike_needs_no_draw(self):
        injector = FaultInjector(FaultPlan((
            LatencySpikeFault(extra_s=1e-3, probability=1.0),)),
            seed=1).attach(_FakeEnv())
        assert injector.nic_penalty("node0-nic") == pytest.approx(1e-3)
        assert injector._rngs == {}  # probability 1.0 short-circuits

    def test_inactive_specs_cost_zero_draws(self):
        injector = FaultInjector(FaultPlan((
            PacketLossFault(rate=0.9, window=FaultWindow(5.0, 6.0)),)),
            seed=1).attach(_FakeEnv())
        assert injector.nic_penalty("node0-nic") == 0.0
        assert injector._rngs == {}

    def test_same_seed_same_penalty_sequence(self):
        def penalties(seed):
            injector = FaultInjector(FULL_PLAN, seed=seed).attach(_FakeEnv())
            return [injector.nic_penalty("node0-nic") for _ in range(64)]

        assert penalties(3) == penalties(3)
        assert penalties(3) != penalties(4)

    def test_timeline_digest_distinguishes_runs(self):
        def timeline(seed):
            injector = FaultInjector(FaultPlan((
                DiskErrorFault(rate=0.5),)), seed=seed).attach(_FakeEnv())
            for _ in range(32):
                try:
                    injector.disk_check("node0-disk")
                except FaultInjectionError:
                    pass
            return injector.timeline

        assert timeline(1).digest() == timeline(1).digest()
        assert timeline(1).digest() != timeline(2).digest()
        assert timeline(1).counts().get("disk_error", 0) > 0


class TestEmptyPlanBitIdentical:
    def test_empty_plan_matches_no_plan(self):
        baseline = run_experiment(DEPLOYMENT, LOAD, _config())
        empty = run_experiment(DEPLOYMENT, LOAD,
                               _config(fault_plan=FaultPlan.empty()))
        assert _result_digest(baseline) == _result_digest(empty)
        assert empty.faults is None

    def test_never_firing_plan_matches_no_plan(self):
        # A spec whose window never opens consumes zero randomness, so
        # the run stays bit-identical to a fault-free one.
        dormant = FaultPlan((
            PacketLossFault(rate=0.9, window=FaultWindow(100.0, 200.0)),))
        baseline = run_experiment(DEPLOYMENT, LOAD, _config())
        shadowed = run_experiment(DEPLOYMENT, LOAD,
                                  _config(fault_plan=dormant))
        assert _result_digest(baseline) == _result_digest(shadowed)
        assert len(shadowed.faults) == 0


class TestFaultedRunDeterminism:
    def test_same_seed_same_timeline_and_metrics(self):
        config = _config(fault_plan=FULL_PLAN,
                         resilience=ResilienceConfig(
                             rpc_timeout_s=2e-3, max_queue_depth=64))
        first = run_experiment(DEPLOYMENT, LOAD, config)
        second = run_experiment(DEPLOYMENT, LOAD, config)
        assert first.faults.digest() == second.faults.digest()
        assert _result_digest(first) == _result_digest(second)
        assert len(first.faults) > 0

    def test_different_seed_different_timeline(self):
        first = run_experiment(DEPLOYMENT, LOAD,
                               _config(seed=7, fault_plan=FULL_PLAN))
        second = run_experiment(DEPLOYMENT, LOAD,
                                _config(seed=8, fault_plan=FULL_PLAN))
        assert first.faults.digest() != second.faults.digest()

    def test_faults_surface_as_failed_requests(self):
        result = run_experiment(DEPLOYMENT, LOAD,
                                _config(fault_plan=FULL_PLAN))
        counts = result.outcome_counts()
        assert counts["error"] > 0
        assert result.error_rate > 0.0
        assert result.faults.counts().get("node_crash") == 1

    def test_fault_plan_rejected_unless_typed(self):
        with pytest.raises(ConfigurationError):
            _config(fault_plan="chaos")
        with pytest.raises(ConfigurationError):
            _config(resilience="retry-a-lot")
