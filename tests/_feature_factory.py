"""Hand-built ServiceFeatures for fast generator tests (no profiling)."""

from repro.app.skeleton import ClientNetworkModel, ServerNetworkModel
from repro.core.features import ServiceFeatures
from repro.profiling.branches import BranchProfile
from repro.profiling.deps import DependencyDistanceProfile
from repro.profiling.instmix import InstructionMixProfile
from repro.profiling.netmodel import NetworkModelProfile
from repro.profiling.syscalls import SyscallProfile, SyscallTemplateEntry
from repro.profiling.threads import (
    ReconstructedThreadClass,
    ThreadModelProfile,
)
from repro.util.stats import Histogram, OnlineStats


def make_features(
    service: str = "svc",
    instructions_per_request: float = 8000.0,
    chase_ratio_large: float = 0.1,
    regular_ratio: float = 0.6,
    shared_ratio: float = 0.05,
) -> ServiceFeatures:
    """A plausible, fully-populated feature set."""
    mix = InstructionMixProfile()
    mix.mix = Histogram({
        "MOV_r64_m64": 20.0, "ADD_r64_r64": 25.0, "CMP_r64_imm": 15.0,
        "JNZ_rel": 10.0, "MOV_m64_r64": 8.0, "MOV_r64_r64": 12.0,
        "XOR_r64_r64": 10.0,
    })
    mix.instructions_per_request = instructions_per_request
    mix.instructions_per_request_by_handler = {
        "op": instructions_per_request}
    mix.clusters = [sorted(str(k) for k in mix.mix.counts)]
    branches = BranchProfile()
    branches.rate_distribution.add((5, 5, True), 0.8)
    branches.rate_distribution.add((1, 2, True), 0.2)
    branches.static_sites = 200
    branches.mean_taken_rate = 0.9
    branches.mean_transition_rate = 0.08
    deps = DependencyDistanceProfile(
        raw={16: 0.6, 64: 0.4}, war={32: 1.0}, waw={64: 1.0},
        pointer_chase_frac=0.08,
    )
    syscalls = SyscallProfile()
    syscalls.templates["op"] = [
        SyscallTemplateEntry("recv", 1.0, 128.0, mean_position=0.0),
        SyscallTemplateEntry("send", 1.0, 1024.0, mean_position=2.0),
    ]
    syscalls.counts_per_request = {"recv": 1.0, "send": 1.0}
    threads = ThreadModelProfile(classes=[
        ReconstructedThreadClass("acceptor", "acceptor", 1, False,
                                 "socket", False),
        ReconstructedThreadClass("worker", "worker", 4, False, "socket",
                                 False),
    ])
    network = NetworkModelProfile(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        rx_bytes=OnlineStats(count=10, mean=128.0),
        tx_bytes=OnlineStats(count=10, mean=1024.0),
        waits_per_request=1.0, rx_per_request=1.0, tx_per_request=1.0,
    )
    return ServiceFeatures(
        service=service,
        mix=mix,
        branches=branches,
        deps=deps,
        syscalls=syscalls,
        threads=threads,
        network=network,
        data_wsets={4096: 200.0, 65536: 80.0, 4 * 1024 * 1024: 20.0,
                    64 * 1024 * 1024: 30.0},
        instr_wsets={64: instructions_per_request * 0.7,
                     16384: instructions_per_request * 0.3},
        regular_ratio=regular_ratio,
        regular_ratio_large=regular_ratio * 0.6,
        chase_ratio_large=chase_ratio_large,
        shared_ratio=shared_ratio,
        write_frac=0.25,
        handler_mix={"op": 1.0},
        rpc_calls={},
        resident_bytes=64 * 1024 * 1024,
        hot_code_bytes=96 * 1024,
        file_sizes={},
        target_counters=None,
        observed_qps=10000.0,
        observed_connections=16,
    )
