"""Unit tests for the application program IR and skeletons."""

import pytest

from repro.app import (
    ClientNetworkModel,
    ComputeOp,
    Handler,
    Program,
    RpcOp,
    ServerNetworkModel,
    Skeleton,
    SyscallOp,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import kv_lookup_block, parse_block
from repro.kernelsim.syscalls import SyscallInvocation
from repro.util.errors import ConfigurationError


def _handler(name="h", rpcs=()):
    ops = [
        SyscallOp(SyscallInvocation("recv", nbytes=100)),
        ComputeOp(parse_block("p", 1000)),
        *rpcs,
        SyscallOp(SyscallInvocation("send", nbytes=200)),
    ]
    return Handler(name, tuple(ops))


class TestHandler:
    def test_accessors_partition_ops(self):
        handler = _handler(rpcs=(RpcOp("downstream", 100, 200),))
        assert len(handler.compute_blocks) == 1
        assert [inv.name for inv in handler.syscalls] == ["recv", "send"]
        assert handler.rpcs[0].target_service == "downstream"

    def test_user_instructions_counts_blocks_only(self):
        handler = _handler()
        assert handler.user_instructions() == pytest.approx(1000, rel=0.01)

    def test_empty_handler_rejected(self):
        with pytest.raises(ConfigurationError):
            Handler("empty", ())

    def test_data_footprint_is_max_wset(self):
        handler = Handler("h", (
            ComputeOp(kv_lookup_block("kv", 1000, table_bytes=1 << 20,
                                      accesses=0)),
        ))
        assert handler.data_footprint_bytes() == 1 << 20

    def test_negative_rpc_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            RpcOp("svc", -1, 0)


class TestProgram:
    def test_handler_lookup(self):
        program = Program(handlers={"h": _handler()})
        assert program.handler("h").name == "h"
        with pytest.raises(ConfigurationError):
            program.handler("missing")

    def test_key_name_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Program(handlers={"x": _handler(name="y")})

    def test_empty_program_rejected(self):
        with pytest.raises(ConfigurationError):
            Program(handlers={})

    def test_static_branch_sites_positive(self):
        program = Program(handlers={"h": _handler()})
        assert program.static_branch_sites() > 0

    def test_downstream_services_deduplicated(self):
        handler = _handler(rpcs=(
            RpcOp("a", 1, 1), RpcOp("b", 1, 1), RpcOp("a", 1, 1),
        ))
        program = Program(handlers={"h": handler})
        assert program.downstream_services() == ["a", "b"]

    def test_total_code_bytes_includes_hot_code(self):
        program = Program(handlers={"h": _handler()},
                          hot_code_bytes=50_000)
        assert program.total_code_bytes() > 50_000


class TestSkeleton:
    def _skeleton(self, **kwargs):
        defaults = dict(
            server_model=ServerNetworkModel.IO_MULTIPLEXING,
            client_model=ClientNetworkModel.SYNCHRONOUS,
            thread_classes=(
                ThreadClass("acceptor", 1, "acceptor", ThreadTrigger.SOCKET),
                ThreadClass("worker", 4, "worker", ThreadTrigger.SOCKET),
            ),
        )
        defaults.update(kwargs)
        return Skeleton(**defaults)

    def test_worker_threads_fixed_pool(self):
        assert self._skeleton().worker_threads(connections=100) == 4

    def test_worker_threads_scaling(self):
        skeleton = self._skeleton(thread_classes=(
            ThreadClass("conn", 0, "worker", ThreadTrigger.SOCKET,
                        scales_with_connections=True),
        ), max_connections=64)
        assert skeleton.worker_threads(connections=10) == 10
        assert skeleton.worker_threads(connections=1000) == 64

    def test_wait_syscall_per_model(self):
        assert self._skeleton().wait_syscall() == "epoll_wait"
        blocking = self._skeleton(server_model=ServerNetworkModel.BLOCKING)
        assert blocking.wait_syscall() == "recv"

    def test_epoll_batching_grows_with_load(self):
        skeleton = self._skeleton()
        low = skeleton.expected_batch(qps=100, workers=4)
        high = skeleton.expected_batch(qps=1_000_000, workers=4)
        assert low < high <= skeleton.max_batch

    def test_blocking_never_batches(self):
        skeleton = self._skeleton(server_model=ServerNetworkModel.BLOCKING)
        assert skeleton.expected_batch(qps=1e6, workers=1) == 1.0

    def test_duplicate_thread_class_names_rejected(self):
        with pytest.raises(ConfigurationError):
            self._skeleton(thread_classes=(
                ThreadClass("w", 1, "worker", ThreadTrigger.SOCKET),
                ThreadClass("w", 1, "worker", ThreadTrigger.SOCKET),
            ))

    def test_timer_class_needs_period(self):
        with pytest.raises(ConfigurationError):
            ThreadClass("bg", 1, "background", ThreadTrigger.TIMER)

    def test_zero_count_non_scaling_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadClass("w", 0, "worker", ThreadTrigger.SOCKET)
