"""Crash recovery: a worker killed mid-tuning resumes to the same bundle.

The scenario the lease/checkpoint machinery exists for: a scheduler
process dies (kill -9, OOM, ctrl-C) while a job is fine-tuning its
tiers. The job record stays in ``tuning`` with an orphaned lease;
:meth:`JobStore.recover` requeues it, and the re-run resumes from the
tiers' :class:`~repro.core.pipeline.TierCheckpoint` files instead of
redoing their fine-tuning — and publishes a result bit-identical to a
never-crashed control run.
"""

import json
import os

import pytest

import repro.core.pipeline as pipeline
from repro import CloneRequest, ExperimentConfig, LoadSpec, PLATFORM_A
from repro.app.workloads import two_tier_deployment
from repro.fleet import CloneJobSpec, FleetScheduler, JobState, JobStore
from repro.profiling import ProfilingBudget

FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)


def _request():
    return CloneRequest(
        deployment=two_tier_deployment(),
        load=LoadSpec.open_loop(2000),
        config=ExperimentConfig(platform=PLATFORM_A, duration_s=0.015,
                                seed=5),
        seed=17, budget=FAST_BUDGET, fine_tune_tiers=True,
        max_tune_iterations=1,
    )


class _CountingFineTune:
    """Wrap the pipeline's fine_tune; optionally die on the Nth call."""

    def __init__(self, inner, crash_on_call=None):
        self.inner = inner
        self.crash_on_call = crash_on_call
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls == self.crash_on_call:
            raise KeyboardInterrupt("worker killed mid-tuning")
        return self.inner(*args, **kwargs)


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """A never-crashed run of the same spec: the reference bundle."""
    store = JobStore(str(tmp_path_factory.mktemp("control")))
    record = store.submit(CloneJobSpec(request=_request()))
    outcomes = FleetScheduler(store, executor="serial").run_until_idle()
    assert [o.state for o in outcomes] == [JobState.PUBLISHED]
    return store, store.get(record.job_id)


def test_crash_mid_tuning_resumes_to_identical_bundle(
        tmp_path, monkeypatch, control):
    control_store, control_record = control
    store = JobStore(str(tmp_path))
    record = store.submit(CloneJobSpec(request=_request()))

    # --- crash: the second tier's fine-tune dies as if kill -9'd. ----- #
    dying = _CountingFineTune(pipeline.fine_tune, crash_on_call=2)
    monkeypatch.setattr(pipeline, "fine_tune", dying)
    with pytest.raises(KeyboardInterrupt):
        FleetScheduler(store, executor="serial").run_until_idle()
    assert dying.calls == 2  # tier one finished, tier two died

    # The record is still in its running state — the crash deliberately
    # does NOT mark it failed — and the scheduler released its lease on
    # the way down, so recovery can see the orphan.
    crashed = store.get(record.job_id)
    assert crashed.state is JobState.TUNING
    assert not os.path.exists(store.lease_path(record.job_id))
    # Tier one's checkpoint survived the crash.
    checkpoints = os.listdir(store.checkpoint_dir(record.job_id))
    assert len(checkpoints) == 1

    # --- recover: the orphan is requeued to submitted. ---------------- #
    assert store.recover() == [record.job_id]
    requeued = store.get(record.job_id)
    assert requeued.state is JobState.SUBMITTED
    assert requeued.history[-1].reason == "recovered"

    # --- resume: tier one comes from its checkpoint, tier two is the
    # only fine-tune that runs again. ---------------------------------- #
    counting = _CountingFineTune(pipeline.fine_tune)
    monkeypatch.setattr(pipeline, "fine_tune", counting)
    outcomes = FleetScheduler(store, executor="serial").run_until_idle()
    assert [o.state for o in outcomes] == [JobState.PUBLISHED]
    assert counting.calls == 1

    # --- fidelity: byte-for-byte the same published artifact as the
    # never-crashed control run. --------------------------------------- #
    final = store.get(record.job_id)
    assert final.state is JobState.PUBLISHED
    assert final.result_digest == control_record.result_digest
    resumed_bundle = json.load(open(store.bundle_path(record.job_id)))
    control_bundle = json.load(
        open(control_store.bundle_path(control_record.job_id)))
    assert resumed_bundle == control_bundle


def test_flight_log_reconstructs_crash_lifecycle(
        tmp_path, monkeypatch, control):
    """The black box: after crash + recovery + resume, the flight log
    alone reconstructs the job's whole lifecycle — including the crash
    requeue — and enabling it leaves the published digest untouched."""
    from repro.fleet.obs.flight import read_flight_log

    control_store, control_record = control
    store = JobStore(str(tmp_path), flight=True)
    record = store.submit(CloneJobSpec(request=_request()))
    dying = _CountingFineTune(pipeline.fine_tune, crash_on_call=1)
    monkeypatch.setattr(pipeline, "fine_tune", dying)
    with pytest.raises(KeyboardInterrupt):
        FleetScheduler(store, executor="serial").run_until_idle()
    monkeypatch.setattr(pipeline, "fine_tune",
                        _CountingFineTune(dying.inner))
    store.recover()
    FleetScheduler(store, executor="serial").run_until_idle()

    log = read_flight_log(store.flight_path)
    assert log.skipped == 0
    assert log.job_ids() == [record.job_id]

    # Full lifecycle from the log alone: submitted, a first attempt up
    # to the crash, the recovery requeue, the resume, publication.
    lifecycle = log.lifecycle(record.job_id)
    assert lifecycle[0] == "submitted"
    assert lifecycle[-1] == "published"
    assert "submitted" in lifecycle[1:-1]       # the crash requeue
    requeues = [event for event
                in log.filter(job_id=record.job_id, kind="job_state")
                if event.data["to"] == "submitted"]
    assert any(event.data["reason"] == "recovered"
               for event in requeues)
    recovered = log.filter(job_id=record.job_id, kind="job_recovered")
    assert len(recovered) == 1

    # Both attempts claimed and released the lease; the result was
    # published exactly once, by the resumed attempt.
    assert len(log.filter(kind="lease_claimed")) == 2
    assert len(log.filter(kind="lease_released")) == 2
    assert len(log.filter(kind="result_published")) == 1

    # Recording never perturbs the clone: same digest as the
    # flight-disabled control run.
    assert (store.get(record.job_id).result_digest
            == control_record.result_digest)


def test_flight_log_survives_a_torn_tail(tmp_path, monkeypatch, control):
    """A log truncated mid-line (the crash case) still yields every
    complete event — the torn tail is skipped and counted."""
    from repro.fleet.obs.flight import read_flight_log

    store = JobStore(str(tmp_path), flight=True)
    record = store.submit(CloneJobSpec(request=_request()))
    intact = read_flight_log(store.flight_path)
    assert [e.kind for e in intact.events] == ["job_submitted"]

    with open(store.flight_path, "a", encoding="utf-8") as handle:
        handle.write('{"format":"ditto-flight/1","seq":9')  # torn write
    torn = read_flight_log(store.flight_path)
    assert torn.skipped == 1
    assert [e.kind for e in torn.events] == ["job_submitted"]
    assert torn.events[0].job_id == record.job_id


def test_recovered_job_history_keeps_the_crash_visible(
        tmp_path, monkeypatch, control):
    """The audit trail shows crash → recovery → resume, not a clean run."""
    store = JobStore(str(tmp_path))
    record = store.submit(CloneJobSpec(request=_request()))
    dying = _CountingFineTune(pipeline.fine_tune, crash_on_call=1)
    monkeypatch.setattr(pipeline, "fine_tune", dying)
    with pytest.raises(KeyboardInterrupt):
        FleetScheduler(store, executor="serial").run_until_idle()
    monkeypatch.setattr(pipeline, "fine_tune",
                        _CountingFineTune(dying.inner))
    store.recover()
    FleetScheduler(store, executor="serial").run_until_idle()
    reasons = [edge.reason for edge in store.get(record.job_id).history]
    assert "recovered" in reasons
    states = [edge.to_state for edge in store.get(record.job_id).history]
    # profiling appears twice: once before the crash, once on resume
    # (the profile is only persisted on success, but tier checkpoints
    # still spare the finished tiers' tuning).
    assert states.count(JobState.PROFILING) == 2
    assert states[-1] is JobState.PUBLISHED
