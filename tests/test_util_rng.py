"""Unit tests for repro.util.rng."""

from repro.util import RngStream, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_is_not_concatenation(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_seed_fits_in_63_bits(self):
        for i in range(32):
            assert 0 <= derive_seed(i, "x") < 2**63


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(3).rng("cache").random(5)
        b = RngStream(3).rng("cache").random(5)
        assert (a == b).all()

    def test_child_streams_independent(self):
        stream = RngStream(3)
        a = stream.child("x").rng("r").random(5)
        b = stream.child("y").rng("r").random(5)
        assert not (a == b).all()

    def test_child_path_equivalent_to_flat_path(self):
        stream = RngStream(3)
        a = stream.child("x").rng("r").random(3)
        b = stream.rng("x", "r").random(3)
        assert (a == b).all()

    def test_make_rng_matches_stream(self):
        a = make_rng(11, "p", "q").random(4)
        b = RngStream(11).rng("p", "q").random(4)
        assert (a == b).all()

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(RngStream(5, "a"))
