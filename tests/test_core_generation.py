"""Tests for Ditto's generators: features, regalloc, body, skeleton."""

import numpy as np
import pytest

from repro.app.program import ComputeOp, RpcOp, SyscallOp
from repro.app.service import Deployment
from repro.app.skeleton import ServerNetworkModel
from repro.app.workloads import build_memcached, build_mongodb
from repro.core import (
    GeneratorConfig,
    TuningKnobs,
    emit_assembly,
    extract_service_features,
    generate_program,
    generate_skeleton,
)
from repro.core.body_gen import build_blocks
from repro.core.regalloc import assign_registers
from repro.hw import PLATFORM_A
from repro.hw.ir import DependencyProfile, MemPattern
from repro.loadgen import LoadSpec
from repro.profiling import profile_deployment
from repro.profiling.deps import DependencyDistanceProfile
from repro.runtime import ExperimentConfig
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def memcached_features():
    deployment = Deployment.single(build_memcached())
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)
    profile = profile_deployment(deployment, LoadSpec.open_loop(100000),
                                 config)
    return extract_service_features(profile.artifacts("memcached"))


class TestFeatures:
    def test_instructions_per_request_positive(self, memcached_features):
        assert memcached_features.instructions_per_request() > 1000

    def test_per_handler_targets(self, memcached_features):
        get = memcached_features.instructions_per_request("get")
        fallback = memcached_features.instructions_per_request("unknown-op")
        assert get > 0 and fallback > 0

    def test_wset_histograms_populated(self, memcached_features):
        assert memcached_features.data_wsets
        assert memcached_features.instr_wsets

    def test_ratios_in_unit_interval(self, memcached_features):
        for value in (memcached_features.regular_ratio,
                      memcached_features.regular_ratio_large,
                      memcached_features.shared_ratio,
                      memcached_features.write_frac):
            assert 0.0 <= value <= 1.0

    def test_hot_code_observed(self, memcached_features):
        assert memcached_features.hot_code_bytes == pytest.approx(96 * 1024)


class TestRegisterAllocation:
    def _profile(self, raw_bin):
        return DependencyDistanceProfile(raw={raw_bin: 1.0},
                                         war={32: 1.0}, waw={64: 1.0},
                                         pointer_chase_frac=0.1)

    def test_assignment_count(self):
        rng = np.random.default_rng(0)
        result = assign_registers(64, self._profile(8), rng)
        assert len(result.assignments) == 64

    def test_never_uses_reserved_registers(self):
        rng = np.random.default_rng(1)
        result = assign_registers(128, self._profile(4), rng)
        reserved = {"r8", "r9", "r10", "r11", "rsp", "rbp"}
        for assignment in result.assignments:
            assert assignment.dest not in reserved
            assert assignment.source not in reserved

    def test_dest_never_equals_source(self):
        rng = np.random.default_rng(2)
        result = assign_registers(128, self._profile(4), rng)
        for assignment in result.assignments:
            assert assignment.dest != assignment.source

    def test_realized_distances_track_targets(self):
        # Short target distances produce shorter realized RAW distances
        # than long targets.
        rng = np.random.default_rng(3)
        short = assign_registers(256, self._profile(2), rng)
        rng = np.random.default_rng(3)
        long = assign_registers(256, self._profile(512), rng)
        assert (short.realized.mean_raw_distance()
                < long.realized.mean_raw_distance())

    def test_chase_fraction_propagated(self):
        rng = np.random.default_rng(4)
        result = assign_registers(32, self._profile(8), rng)
        assert result.realized.pointer_chase_frac == pytest.approx(0.1)

    def test_invalid_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_registers(0, self._profile(8), np.random.default_rng(0))


class TestGeneratorConfigStages:
    def test_stage_ordering_cumulative(self):
        skeleton = GeneratorConfig.stage("skeleton")
        assert not skeleton.syscalls and not skeleton.instruction_count
        syscall = GeneratorConfig.stage("syscall")
        assert syscall.syscalls and not syscall.instruction_count
        datadep = GeneratorConfig.stage("datadep")
        assert datadep.data_dependencies and datadep.data_memory

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig.stage("warpdrive")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningKnobs(imem_scale=0.0)


class TestBuildBlocks:
    def test_instruction_target_met(self, memcached_features):
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, GeneratorConfig(), "get",
                              rng)
        total = sum(b.instructions_per_request for b in blocks)
        target = memcached_features.instructions_per_request("get")
        assert total == pytest.approx(target, rel=0.05)

    def test_block_count_bounded(self, memcached_features):
        config = GeneratorConfig(max_blocks=6)
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, config, "get", rng)
        # max_blocks bounds the i-wset bins; REP and narrow-port iforms
        # add a handful of dedicated single-iform blocks on top.
        dedicated = [b for b in blocks
                     if "_rep_" in b.name or "_port_" in b.name]
        assert 1 <= len(blocks) - len(dedicated) <= 6
        assert len(dedicated) <= 6

    def test_stage_c_uses_plain_adds(self, memcached_features):
        config = GeneratorConfig.stage("inst_count")
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, config, "get", rng)
        for block in blocks:
            assert set(block.iform_counts) == {"ADD_r64_r64"}

    def test_stage_a_emits_empty_body(self, memcached_features):
        config = GeneratorConfig.stage("skeleton")
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, config, "get", rng)
        assert len(blocks) == 1
        assert blocks[0].instructions_per_request <= 16

    def test_dmem_realises_profile(self, memcached_features):
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, GeneratorConfig(), "get",
                              rng)
        realized = 0.0
        for block in blocks:
            for spec in block.mem:
                realized += spec.accesses * block.iterations
        profiled = sum(memcached_features.data_wsets.values())
        assert realized == pytest.approx(profiled, rel=0.2)

    def test_no_dmem_stage_uses_smallest_wset(self, memcached_features):
        config = GeneratorConfig.stage("imem")
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, config, "get", rng)
        for block in blocks:
            for spec in block.mem:
                assert spec.wset_bytes == 64

    def test_knobs_scale_working_sets(self, memcached_features):
        rng = np.random.default_rng(0)
        base = build_blocks(memcached_features, GeneratorConfig(), "get", rng)
        rng = np.random.default_rng(0)
        scaled_config = GeneratorConfig(
            knobs=TuningKnobs(dmem_scale=2.0, big_wset_scale=2.0))
        scaled = build_blocks(memcached_features, scaled_config, "get", rng)
        max_base = max(s.wset_bytes for b in base for s in b.mem)
        max_scaled = max(s.wset_bytes for b in scaled for s in b.mem)
        assert max_scaled == pytest.approx(2 * max_base, rel=0.01)

    def test_branch_specs_from_profile(self, memcached_features):
        rng = np.random.default_rng(0)
        blocks = build_blocks(memcached_features, GeneratorConfig(), "get",
                              rng)
        assert any(block.branches for block in blocks)
        for block in blocks:
            for branch in block.branches:
                assert 0.0 <= branch.taken_rate <= 1.0


class TestGenerateProgram:
    def test_handlers_match_observed_mix(self, memcached_features):
        program, _files = generate_program(memcached_features)
        assert set(program.handlers) == set(memcached_features.handler_mix)

    def test_syscall_order_rx_before_tx(self, memcached_features):
        program, _files = generate_program(memcached_features)
        handler = program.handler("get")
        names = [op.invocation.name for op in handler.ops
                 if isinstance(op, SyscallOp)]
        assert names.index("recv") < names.index("sendmsg")

    def test_files_anonymised_with_sizes_kept(self):
        deployment = Deployment.single(build_mongodb())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=5, page_cache_bytes=4 * 1024**3)
        profile = profile_deployment(deployment, LoadSpec.closed_loop(4),
                                     config)
        features = extract_service_features(profile.artifacts("mongodb"))
        program, files = generate_program(features)
        assert all(name.startswith("synthetic_file_") for name in files)
        assert pytest.approx(40 * 1024**3) in list(files.values())
        # The disk syscalls reference the anonymised file.
        preads = [op.invocation for op in program.handler("find").ops
                  if isinstance(op, SyscallOp)
                  and op.invocation.name == "pread"]
        assert preads and preads[0].file in files

    def test_hot_code_matches_observed(self, memcached_features):
        program, _files = generate_program(memcached_features)
        assert program.hot_code_bytes == pytest.approx(
            memcached_features.hot_code_bytes)

    def test_stage_b_keeps_syscalls_drops_compute(self, memcached_features):
        program, _files = generate_program(
            memcached_features, GeneratorConfig.stage("syscall"))
        handler = program.handler("get")
        syscalls = [op for op in handler.ops if isinstance(op, SyscallOp)]
        blocks = [op.block for op in handler.ops
                  if isinstance(op, ComputeOp)]
        assert syscalls
        assert sum(b.instructions_per_request for b in blocks) <= 16


class TestGenerateSkeleton:
    def test_memcached_skeleton_recovered(self, memcached_features):
        skeleton = generate_skeleton(memcached_features.threads,
                                     memcached_features.network)
        assert skeleton.server_model is ServerNetworkModel.IO_MULTIPLEXING
        assert skeleton.worker_threads() == 4

    def test_fallback_worker_added(self):
        from repro.profiling.threads import ThreadModelProfile, \
            ReconstructedThreadClass
        from repro.profiling.netmodel import NetworkModelProfile
        from repro.app.skeleton import ClientNetworkModel
        from repro.util.stats import OnlineStats
        threads = ThreadModelProfile(classes=[ReconstructedThreadClass(
            "c0", "acceptor", 1, False, "socket", False)])
        network = NetworkModelProfile(
            server_model=ServerNetworkModel.IO_MULTIPLEXING,
            client_model=ClientNetworkModel.SYNCHRONOUS,
            rx_bytes=OnlineStats(), tx_bytes=OnlineStats(),
            waits_per_request=1.0, rx_per_request=1.0, tx_per_request=1.0)
        skeleton = generate_skeleton(threads, network)
        assert skeleton.worker_threads() >= 1


class TestCodegen:
    def test_listing_contains_fig3_constructs(self, memcached_features):
        program, _files = generate_program(memcached_features)
        listing = emit_assembly(program)
        assert "epoll_wait" in listing
        assert "test r8d" in listing          # branch bitmask
        assert "QWORD PTR [r10" in listing    # working-set offsets
        assert ".BLOCK_" in listing           # looping blocks
        assert "jl .BLOCK_" in listing

    def test_listing_conceals_original_names(self, memcached_features):
        program, _files = generate_program(memcached_features)
        listing = emit_assembly(program)
        assert "mc_lookup" not in listing
        assert "memcached" not in listing.lower().replace(
            "synthetic", "")
