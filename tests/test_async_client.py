"""Tests for the asynchronous client model (§4.3.1)."""

import pytest

from repro.app.skeleton import ClientNetworkModel
from repro.app.workloads.asyncgw import async_gateway_deployment
from repro.core import CloneRequest, DittoCloner
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment, \
    profile_network_model
from repro.runtime import ExperimentConfig, run_experiment

FAST_BUDGET = ProfilingBudget(sampled_requests=6, max_accesses_per_spec=384,
                              max_istream_per_block=1024,
                              branch_outcomes_per_site=96,
                              max_sites_per_population=6,
                              dep_samples_per_block=32,
                              profile_duration_s=0.02)


def _run(asynchronous, qps, duration=0.04, workers=2):
    deployment = async_gateway_deployment(asynchronous=asynchronous,
                                          workers=workers)
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=duration,
                              seed=6)
    return run_experiment(deployment, LoadSpec.open_loop(qps), config)


class TestAsyncRuntimeSemantics:
    def test_async_gateway_outperforms_sync_twin_at_load(self):
        # Two workers; backend round trips dominate. The sync gateway's
        # capacity is ~2/downstream-latency; the async one keeps taking
        # requests during the waits.
        qps = 16_000
        sync_result = _run(asynchronous=False, qps=qps)
        async_result = _run(asynchronous=True, qps=qps)
        assert (async_result.latency_ms(99)
                < 0.65 * sync_result.latency_ms(99))

    def test_same_work_performed_either_way(self):
        sync_result = _run(asynchronous=False, qps=3_000)
        async_result = _run(asynchronous=True, qps=3_000)
        sync_m = sync_result.service("gateway")
        async_m = async_result.service("gateway")
        assert async_m.requests == pytest.approx(sync_m.requests, rel=0.1)
        # The async client adds reactor-registration kernel work, so its
        # per-request instruction count is slightly higher, never lower.
        assert (async_m.instructions_per_request
                >= sync_m.instructions_per_request * 0.98)

    def test_backends_loaded_equally(self):
        result = _run(asynchronous=True, qps=5_000)
        a = result.service("backend-a").requests
        b = result.service("backend-b").requests
        assert a == b


class TestAsyncDetectionAndCloning:
    @pytest.fixture(scope="class")
    def clones(self):
        out = {}
        for asynchronous in (False, True):
            deployment = async_gateway_deployment(asynchronous=asynchronous)
            config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                      seed=6)
            profile = profile_deployment(
                deployment, LoadSpec.open_loop(3000), config,
                budget=FAST_BUDGET)
            out[asynchronous] = (deployment, profile)
        return out

    def test_profiler_detects_client_model(self, clones):
        for asynchronous, (_deployment, profile) in clones.items():
            network = profile_network_model(profile.artifacts("gateway"))
            expected = (ClientNetworkModel.ASYNCHRONOUS if asynchronous
                        else ClientNetworkModel.SYNCHRONOUS)
            assert network.client_model is expected, asynchronous

    def test_clone_preserves_async_behaviour(self, clones):
        deployment, _profile = clones[True]
        cloner = DittoCloner(fine_tune_tiers=False, budget=FAST_BUDGET)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=6)
        synthetic = cloner.clone(CloneRequest(
            deployment=deployment, load=LoadSpec.open_loop(3000),
            config=config)).synthetic
        skeleton = synthetic.services["gateway"].skeleton
        assert skeleton.client_model is ClientNetworkModel.ASYNCHRONOUS
        # And the synthetic keeps the async capacity advantage.
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                seed=9)
        result = run_experiment(synthetic, LoadSpec.open_loop(12_000), vcfg)
        assert result.latency_ms(99) < 5.0
