"""CloneRequest: validation, digests, option plumbing, the legacy shim."""

import pickle
from dataclasses import FrozenInstanceError, replace

import pytest

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    FaultPlan,
    LoadSpec,
    PLATFORM_A,
    PLATFORM_B,
    build_memcached,
)
from repro.faults import DiskSlowdownFault
from repro.profiling import ProfilingBudget
from repro.runtime import ResilienceConfig
from repro.util import ConfigurationError
from repro.validation import FidelityGate

LOAD = LoadSpec.open_loop(50_000)
CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)


def _deployment():
    return Deployment.single(build_memcached())


def _request(**overrides):
    fields = dict(deployment=_deployment(), load=LOAD, config=CONFIG)
    fields.update(overrides)
    return CloneRequest(**fields)


class TestConstruction:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            CloneRequest(_deployment(), LOAD, CONFIG)

    def test_frozen(self):
        request = _request()
        with pytest.raises(FrozenInstanceError):
            request.seed = 3

    def test_picklable(self):
        request = _request(seed=7)
        clone = pickle.loads(pickle.dumps(request))
        assert clone.digest() == request.digest()

    def test_required_fields_validated(self):
        with pytest.raises(ConfigurationError):
            _request(deployment="memcached")
        with pytest.raises(ConfigurationError):
            _request(load=50_000)
        with pytest.raises(ConfigurationError):
            _request(config={"platform": "A"})

    def test_option_fields_validated(self):
        with pytest.raises(ConfigurationError):
            _request(seed=True)
        with pytest.raises(ConfigurationError):
            _request(seed="17")
        with pytest.raises(ConfigurationError):
            _request(max_tune_iterations=0)
        with pytest.raises(ConfigurationError):
            _request(max_tune_iterations=True)
        with pytest.raises(ConfigurationError):
            _request(validate="strict")
        with pytest.raises(ConfigurationError):
            _request(remediation="retry-harder")
        with pytest.raises(ConfigurationError):
            _request(validation_load=3.0)

    def test_fault_plan_conflict_rejected(self):
        plan = FaultPlan((DiskSlowdownFault(factor=4.0),))
        config = replace(CONFIG, fault_plan=plan)
        with pytest.raises(ConfigurationError):
            _request(config=config, fault_plan=plan)

    def test_resilience_conflict_rejected(self):
        resilience = ResilienceConfig()
        config = replace(CONFIG, resilience=resilience)
        with pytest.raises(ConfigurationError):
            _request(config=config, resilience=resilience)


class TestDerivedViews:
    def test_effective_config_passthrough(self):
        assert _request().effective_config() is CONFIG

    def test_effective_config_folds_fault_plan(self):
        plan = FaultPlan((DiskSlowdownFault(factor=4.0),))
        effective = _request(fault_plan=plan).effective_config()
        assert effective.fault_plan is plan
        assert effective.platform is CONFIG.platform

    def test_effective_validation_load_defaults_to_load(self):
        assert _request().effective_validation_load() is LOAD
        other = LoadSpec.open_loop(9_000)
        assert (_request(validation_load=other).effective_validation_load()
                is other)

    def test_cloner_options_only_non_none(self):
        assert _request().cloner_options() == {}
        options = _request(seed=7, fine_tune_tiers=False).cloner_options()
        assert options == {"seed": 7, "fine_tune_tiers": False}

    def test_validate_false_is_an_option_not_inherit(self):
        # Tri-state: False forces the gate off, None inherits.
        assert _request(validate=False).cloner_options() == {
            "validate": False}
        assert "validate" not in _request().cloner_options()

    def test_describe_mentions_the_deployment(self):
        text = _request(seed=7).describe()
        assert "memcached" in text
        assert "seed 7" in text


class TestDigest:
    def test_stable_across_equal_requests(self):
        assert _request(seed=7).digest() == _request(seed=7).digest()

    def test_sensitive_to_output_affecting_fields(self):
        base = _request()
        assert base.digest() != _request(seed=7).digest()
        assert base.digest() != _request(
            load=LoadSpec.open_loop(60_000)).digest()
        assert base.digest() != _request(
            config=ExperimentConfig(platform=PLATFORM_B,
                                    duration_s=0.02, seed=5)).digest()
        assert base.digest() != _request(fine_tune_tiers=False).digest()
        assert base.digest() != _request(
            budget=ProfilingBudget(sampled_requests=4)).digest()

    def test_equal_gates_hash_equally(self):
        a = _request(validate=FidelityGate({"ipc": 0.1}))
        b = _request(validate=FidelityGate({"ipc": 0.1}))
        c = _request(validate=FidelityGate({"ipc": 0.2}))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert a.digest() != _request(validate=True).digest()


class TestClonerIntegration:
    def test_for_request_applies_options(self):
        request = _request(seed=7, fine_tune_tiers=False,
                           max_tune_iterations=2)
        cloner = DittoCloner.for_request(request)
        assert cloner.seed == 7
        assert cloner.fine_tune_tiers is False
        assert cloner.max_tune_iterations == 2

    def test_for_request_overrides_win(self):
        cloner = DittoCloner.for_request(_request(seed=7), seed=9,
                                         executor="serial")
        assert cloner.seed == 9
        assert cloner.executor == "serial"

    def test_effective_request_overrides_cloner(self):
        cloner = DittoCloner(seed=3, max_tune_iterations=5)
        effective = cloner._effective(_request(seed=7))
        assert effective.seed == 7
        assert effective.max_tune_iterations == 5  # inherited

    def test_effective_is_identity_without_options(self):
        cloner = DittoCloner(seed=3)
        assert cloner._effective(_request()) is cloner

    def test_clone_rejects_request_plus_positionals(self):
        with pytest.raises(ConfigurationError):
            DittoCloner().clone(_request(), LOAD)

    def test_legacy_positional_requires_all_three(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                DittoCloner().clone(_deployment(), LOAD)
