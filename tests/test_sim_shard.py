"""Tests for the deterministic sharded simulation runner.

The contract under test (DESIGN.md "Sharded simulation"): for a
supported configuration, ``ExperimentConfig(shards=N)`` produces a
result digest that is byte-identical to the classic single-process
runner's, for every N — partitioning is a hosting decision, not a
modelling decision.
"""

import pytest

from repro import (
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_social_network,
    social_network_deployment,
)
from repro.runtime.experiment import run_experiment
from repro.util.errors import ConfigurationError

from tests.test_perf_equivalence import _result_digest

#: digest of the pinned multi-tier workload below — independent of the
#: shard count and identical to the classic runner's (regenerate with
#: the loop in this file if the simulation model legitimately changes)
PINNED_SOCIALNET_DIGEST = (
    "3cde58baa5c44565f2686d38872d09f2bbfcdebd4eb793e5f27529ab35878c0e")


def _socialnet_three_nodes():
    names = list(build_social_network())
    placement = {name: f"node{i % 3}" for i, name in enumerate(names)}
    return social_network_deployment(placement=placement)


def _config(**overrides):
    params = dict(platform=PLATFORM_A, duration_s=0.02, seed=11)
    params.update(overrides)
    return ExperimentConfig(**params)


def _digest(shards, **config_overrides):
    result = run_experiment(_socialnet_three_nodes(),
                            LoadSpec.open_loop(25_000),
                            _config(shards=shards, **config_overrides))
    return _result_digest(result), result


class TestShardCountIndependence:
    def test_pinned_digest_for_every_shard_count(self):
        for shards in (None, 1, 2):
            digest, result = _digest(shards)
            assert digest == PINNED_SOCIALNET_DIGEST, (
                f"shards={shards} diverged from the pinned digest")
            assert result.events_dispatched > 0

    def test_forked_run_is_deterministic_across_repeats(self):
        first, _ = _digest(2)
        second, _ = _digest(2)
        assert first == second

    def test_shard_count_above_node_count_is_clamped(self):
        digest, _ = _digest(16)
        assert digest == PINNED_SOCIALNET_DIGEST

    def test_closed_loop_load_matches_classic(self):
        load = LoadSpec.closed_loop(8, think_time_s=1e-4)
        deployment = _socialnet_three_nodes()
        classic = run_experiment(deployment, load, _config())
        sharded = run_experiment(deployment, load, _config(shards=2))
        assert _result_digest(sharded) == _result_digest(classic)


class TestShardModeRestrictions:
    def test_zero_shards_rejected_at_config(self):
        with pytest.raises(ConfigurationError, match="shards"):
            _config(shards=0)

    def test_fault_plan_rejected(self):
        from repro.faults import FaultPlan, PacketLossFault

        plan = FaultPlan((PacketLossFault(rate=0.3),))
        with pytest.raises(ConfigurationError, match="fault plans"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, fault_plan=plan))

    def test_explicit_tracer_rejected(self):
        from repro.tracing import Tracer

        with pytest.raises(ConfigurationError, match="tracer"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, tracer=Tracer(sample_rate=1.0)))

    def test_watchdogs_rejected(self):
        with pytest.raises(ConfigurationError, match="watchdogs"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, max_sim_events=10_000))


class TestShardedResultShape:
    def test_merged_result_covers_all_services_and_nodes(self):
        _, result = _digest(2)
        assert set(result.services) == set(build_social_network())
        assert {"node0", "node1", "node2"} <= set(result.node_utilisation)

    def test_events_dispatched_sums_partitions(self):
        _, sharded = _digest(2)
        _, classic = _digest(None)
        # identical simulated schedules, modulo runner bookkeeping
        # entries (window wakeups vs loadgen pacing), so the totals are
        # the same order of magnitude
        assert sharded.events_dispatched > 0.5 * classic.events_dispatched
