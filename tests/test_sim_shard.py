"""Tests for the deterministic sharded simulation runner.

The contract under test (DESIGN.md "Sharded simulation"): for a
supported configuration, ``ExperimentConfig(shards=N)`` produces a
result digest that is byte-identical to the classic single-process
runner's, for every N — partitioning is a hosting decision, not a
modelling decision.
"""

import pytest

from repro import (
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_social_network,
    social_network_deployment,
)
from repro.runtime.experiment import run_experiment
from repro.util.errors import ConfigurationError, SimBudgetExceededError

from tests.test_perf_equivalence import _result_digest

#: digest of the pinned multi-tier workload below — independent of the
#: shard count and identical to the classic runner's (regenerate with
#: the loop in this file if the simulation model legitimately changes)
PINNED_SOCIALNET_DIGEST = (
    "3cde58baa5c44565f2686d38872d09f2bbfcdebd4eb793e5f27529ab35878c0e")


def _socialnet_three_nodes():
    names = list(build_social_network())
    placement = {name: f"node{i % 3}" for i, name in enumerate(names)}
    return social_network_deployment(placement=placement)


def _config(**overrides):
    params = dict(platform=PLATFORM_A, duration_s=0.02, seed=11)
    params.update(overrides)
    return ExperimentConfig(**params)


def _digest(shards, **config_overrides):
    result = run_experiment(_socialnet_three_nodes(),
                            LoadSpec.open_loop(25_000),
                            _config(shards=shards, **config_overrides))
    return _result_digest(result), result


class TestShardCountIndependence:
    def test_pinned_digest_for_every_shard_count(self):
        for shards in (None, 1, 2):
            digest, result = _digest(shards)
            assert digest == PINNED_SOCIALNET_DIGEST, (
                f"shards={shards} diverged from the pinned digest")
            assert result.events_dispatched > 0

    def test_forked_run_is_deterministic_across_repeats(self):
        first, _ = _digest(2)
        second, _ = _digest(2)
        assert first == second

    def test_shard_count_above_node_count_is_clamped(self):
        digest, _ = _digest(16)
        assert digest == PINNED_SOCIALNET_DIGEST

    def test_closed_loop_load_matches_classic(self):
        load = LoadSpec.closed_loop(8, think_time_s=1e-4)
        deployment = _socialnet_three_nodes()
        classic = run_experiment(deployment, load, _config())
        sharded = run_experiment(deployment, load, _config(shards=2))
        assert _result_digest(sharded) == _result_digest(classic)


class TestShardModeRestrictions:
    def test_zero_shards_rejected_at_config(self):
        with pytest.raises(ConfigurationError, match="shards"):
            _config(shards=0)

    def test_fault_plan_rejected(self):
        from repro.faults import FaultPlan, PacketLossFault

        plan = FaultPlan((PacketLossFault(rate=0.3),))
        with pytest.raises(ConfigurationError, match="fault plans"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, fault_plan=plan))

    def test_explicit_tracer_rejected(self):
        from repro.tracing import Tracer

        with pytest.raises(ConfigurationError, match="tracer"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, tracer=Tracer(sample_rate=1.0)))

    def test_event_budget_rejected_across_processes(self):
        # The refusal names the exact feature and the supported
        # alternative (shards=1 hosts every partition in-process).
        with pytest.raises(ConfigurationError,
                           match=r"max_sim_events.*shards=1"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, max_sim_events=10_000))

    def test_deadline_rejected_across_processes(self):
        with pytest.raises(ConfigurationError,
                           match=r"sim_deadline_s.*shards=1"):
            run_experiment(_socialnet_three_nodes(),
                           LoadSpec.open_loop(1_000),
                           _config(shards=2, sim_deadline_s=1.0))

    def test_stall_watchdog_rejected_in_every_shard_mode(self):
        # Stall counts reset at each conservative window barrier, so
        # the livelock guard is refused even for in-process hosting.
        for shards in (1, 2):
            with pytest.raises(ConfigurationError,
                               match=r"max_stalled_events.*shards=None"):
                run_experiment(_socialnet_three_nodes(),
                               LoadSpec.open_loop(1_000),
                               _config(shards=shards,
                                       max_stalled_events=64))


class TestSingleShardWatchdogs:
    """``shards=1`` hosts all partitions in-process, so the engine
    watchdogs work — with a *global* event budget across partitions."""

    def test_generous_watchdogs_keep_the_pinned_digest(self):
        digest, _ = _digest(1, max_sim_events=50_000_000,
                            sim_deadline_s=10.0)
        assert digest == PINNED_SOCIALNET_DIGEST

    def test_event_budget_trips_across_partitions(self):
        with pytest.raises(SimBudgetExceededError) as info:
            _digest(1, max_sim_events=500)
        assert info.value.budget == "max_events"
        # the trip reports the configured global budget, not the
        # window-local remainder the engine saw
        assert "500" in str(info.value)

    def test_deadline_trips(self):
        with pytest.raises(SimBudgetExceededError) as info:
            _digest(1, sim_deadline_s=0.02)
        assert info.value.budget == "deadline"


class TestShardedResultShape:
    def test_merged_result_covers_all_services_and_nodes(self):
        _, result = _digest(2)
        assert set(result.services) == set(build_social_network())
        assert {"node0", "node1", "node2"} <= set(result.node_utilisation)

    def test_events_dispatched_sums_partitions(self):
        _, sharded = _digest(2)
        _, classic = _digest(None)
        # identical simulated schedules, modulo runner bookkeeping
        # entries (window wakeups vs loadgen pacing), so the totals are
        # the same order of magnitude
        assert sharded.events_dispatched > 0.5 * classic.events_dispatched
