"""Unit tests for repro.util.quantize."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    ConfigurationError,
    LogScaleQuantizer,
    next_pow2,
    pow2_bins,
    prev_pow2,
    quantize_pow2,
)
from repro.util.quantize import bin_index, exponential_bins


class TestPow2Helpers:
    def test_next_pow2_exact(self):
        assert next_pow2(64) == 64

    def test_next_pow2_rounds_up(self):
        assert next_pow2(65) == 128

    def test_prev_pow2_rounds_down(self):
        assert prev_pow2(127) == 64

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigurationError):
            next_pow2(0)
        with pytest.raises(ConfigurationError):
            prev_pow2(-4)

    @given(st.integers(1, 2**40))
    def test_bracketing_invariant(self, value):
        assert prev_pow2(value) <= value <= next_pow2(value)
        assert next_pow2(value) <= 2 * prev_pow2(value)


class TestQuantizePow2:
    def test_clamps_low(self):
        assert quantize_pow2(1, 64, 1024) == 64

    def test_clamps_high(self):
        assert quantize_pow2(10**9, 64, 1024) == 1024

    def test_ties_round_up(self):
        # 96 is equidistant between 64 and 128.
        assert quantize_pow2(96, 64, 1024) == 128

    def test_nearest_below(self):
        assert quantize_pow2(70, 64, 1024) == 64

    def test_bad_bounds_raise(self):
        with pytest.raises(ConfigurationError):
            quantize_pow2(10, 63, 1024)
        with pytest.raises(ConfigurationError):
            quantize_pow2(10, 1024, 64)

    @given(st.integers(1, 2**30))
    def test_result_is_power_of_two_in_range(self, value):
        result = quantize_pow2(value, 64, 2**20)
        assert result & (result - 1) == 0
        assert 64 <= result <= 2**20


class TestPow2Bins:
    def test_paper_dependency_bins(self):
        # Ditto quantises dependency distances into 11 exponential bins 1..1024.
        assert exponential_bins(1, 1024) == [1, 2, 4, 8, 16, 32, 64, 128, 256,
                                             512, 1024]

    def test_single_bin(self):
        assert pow2_bins(64, 64) == [64]

    def test_bad_range_raises(self):
        with pytest.raises(ConfigurationError):
            pow2_bins(128, 64)


class TestLogScaleQuantizer:
    def test_half_maps_to_exponent_one(self):
        assert LogScaleQuantizer().quantize(0.5) == 1

    def test_high_probability_folds(self):
        # taken rate 0.875 folds to 0.125 => exponent 3
        assert LogScaleQuantizer().quantize(0.875) == 3

    def test_zero_maps_to_deepest_bin(self):
        q = LogScaleQuantizer(max_exponent=10)
        assert q.quantize(0.0) == 10

    def test_value_round_trip(self):
        q = LogScaleQuantizer(max_exponent=10)
        for exponent in q.exponents:
            assert q.quantize(q.value(exponent)) == exponent

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            LogScaleQuantizer().quantize(1.5)
        with pytest.raises(ConfigurationError):
            LogScaleQuantizer().value(0)

    @given(st.floats(0.0, 1.0))
    def test_quantize_always_on_grid(self, p):
        q = LogScaleQuantizer(max_exponent=10)
        assert q.quantize(p) in set(q.exponents)


class TestBinIndex:
    def test_first_bin(self):
        assert bin_index(1, [1, 2, 4]) == 0

    def test_clamps_to_last(self):
        assert bin_index(100, [1, 2, 4]) == 2

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            bin_index(1, [])
