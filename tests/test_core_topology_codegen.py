"""Tests for the topology analyser and the assembly emitter."""

import pytest

from repro.core import analyze_topology, emit_assembly, generate_program
from repro.core.codegen import _bitmask_comment
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment
from repro.tracing import Tracer
from repro.util.errors import ProfilingError

from tests._feature_factory import make_features


@pytest.fixture(scope="module")
def socialnet_spans():
    from repro.app.workloads.socialnet import social_network_deployment
    tracer = Tracer(sample_rate=1.0)
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=2,
                              tracer=tracer)
    run_experiment(social_network_deployment(), LoadSpec.open_loop(700),
                   config)
    return tracer.finished_spans()


class TestAnalyzeTopology:
    def test_entry_identified(self, socialnet_spans):
        summary = analyze_topology(socialnet_spans)
        assert summary.entry_service == "frontend"

    def test_all_tiers_discovered(self, socialnet_spans):
        summary = analyze_topology(socialnet_spans)
        # Every tier that saw traffic appears; the backbone tiers must.
        for tier in ("frontend", "home-timeline-service",
                     "social-graph-service", "post-storage-service"):
            assert tier in summary.tiers

    def test_edges_carry_call_counts(self, socialnet_spans):
        summary = analyze_topology(socialnet_spans)
        for src, dst, calls in summary.edges:
            assert calls > 0
            assert src != dst

    def test_fan_out(self, socialnet_spans):
        summary = analyze_topology(socialnet_spans)
        assert summary.fan_out("frontend") == 3
        assert summary.fan_out("socialgraph-redis") == 0

    def test_empty_spans_rejected(self):
        with pytest.raises(ProfilingError):
            analyze_topology([])


class TestAssemblyEmitter:
    @pytest.fixture(scope="class")
    def listing(self):
        program, _files = generate_program(make_features())
        return emit_assembly(program)

    def test_skeleton_loop_present(self, listing):
        assert "void main_loop()" in listing
        assert "epoll_wait(listen_fd" in listing

    def test_handlers_emitted(self, listing):
        assert "void handler_op(" in listing

    def test_syscall_replay_lines(self, listing):
        assert "recv(fd, buffer," in listing
        assert "send(fd, buffer," in listing

    def test_loop_structure(self, listing):
        assert '"xor r9, r9\\n"' in listing
        assert "cmp r9," in listing

    def test_branch_bitmask_encoding(self):
        comment = _bitmask_comment(taken_rate=0.875, transition_rate=0.25)
        # taken 0.875 folds to 0.125 = 2^-3 -> three leading one bits.
        assert "0xe0000000" in comment
        assert "2^-3" in comment
        assert "2^-2" in comment

    def test_no_branch_register_operands(self, listing):
        for line in listing.splitlines():
            stripped = line.strip().strip('"')
            for mnemonic in ("jz ", "jnz ", "jl "):
                if stripped.startswith(mnemonic):
                    target = stripped[len(mnemonic):]
                    assert target.startswith(".") or target.startswith(
                        "0x"), line

    def test_deterministic(self):
        program, _files = generate_program(make_features())
        assert emit_assembly(program, seed=4) == emit_assembly(program,
                                                               seed=4)


class TestWsetHelpers:
    def test_region_chase_ratio_weighted(self):
        import numpy as np
        from repro.profiling.artifacts import RegionTrace
        from repro.profiling.wset import region_chase_ratio
        chasing = RegionTrace(
            addresses=np.arange(10, dtype=np.int64) * 64,
            weights=np.full(10, 3.0), region_bytes=1 << 21, chase_frac=1.0)
        plain = RegionTrace(
            addresses=np.arange(10, dtype=np.int64) * 64,
            weights=np.full(10, 1.0), region_bytes=1 << 21, chase_frac=0.0)
        assert region_chase_ratio([chasing, plain]) == pytest.approx(0.75)

    def test_region_chase_ratio_band_filter(self):
        import numpy as np
        from repro.profiling.artifacts import RegionTrace
        from repro.profiling.wset import region_chase_ratio
        small = RegionTrace(
            addresses=np.arange(4, dtype=np.int64) * 64,
            weights=np.full(4, 1.0), region_bytes=4096, chase_frac=1.0)
        assert region_chase_ratio([small],
                                  min_region_bytes=1 << 20) == 0.0

    def test_empty_regions_zero(self):
        from repro.profiling.wset import (
            region_chase_ratio,
            region_regularity_ratio,
            region_shared_ratio,
        )
        assert region_chase_ratio([]) == 0.0
        assert region_regularity_ratio([]) == 0.0
        assert region_shared_ratio([]) == 0.0
