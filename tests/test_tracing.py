"""Unit tests for spans, the tracer, and dependency-graph extraction."""

import pytest

from repro.tracing import SpanKind, Tracer, extract_dependency_graph
from repro.util.errors import ConfigurationError, ProfilingError


def _make_trace(tracer, services):
    """Build one synthetic trace: services[0] -> services[1] -> ..."""
    trace_id = tracer.start_trace()
    t = 0.0
    parent_id = None
    open_spans = []
    for depth, (service, op) in enumerate(services):
        server = tracer.start_span(trace_id, service, op, SpanKind.SERVER,
                                   t, parent_id=parent_id)
        open_spans.append(server)
        if depth + 1 < len(services):
            client = tracer.start_span(
                trace_id, service, f"call_{services[depth + 1][0]}",
                SpanKind.CLIENT, t + 0.001,
                parent_id=server.span_id,
                tags={"request_bytes": 100.0, "response_bytes": 200.0},
            )
            open_spans.append(client)
            parent_id = client.span_id
        t += 0.001
    for span in reversed(open_spans):
        span.finish(t + 0.01)
    return trace_id


class TestSpan:
    def test_duration(self):
        tracer = Tracer()
        trace = tracer.start_trace()
        span = tracer.start_span(trace, "svc", "op", SpanKind.SERVER, 1.0)
        span.finish(1.5)
        assert span.duration == pytest.approx(0.5)

    def test_finish_before_start_rejected(self):
        tracer = Tracer()
        trace = tracer.start_trace()
        span = tracer.start_span(trace, "svc", "op", SpanKind.SERVER, 1.0)
        with pytest.raises(ConfigurationError):
            span.finish(0.5)


class TestTracer:
    def test_full_sampling_records_all(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            _make_trace(tracer, [("a", "op")])
        assert len(tracer.finished_spans()) == 5

    def test_zero_sampling_records_none(self):
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.start_trace()
        assert tracer.start_span(trace, "a", "op", SpanKind.SERVER, 0.0) is None

    def test_partial_sampling_is_per_trace(self):
        tracer = Tracer(sample_rate=0.5, seed=3)
        sampled = sum(tracer.is_sampled(tracer.start_trace())
                      for _ in range(200))
        assert 50 < sampled < 150

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=1.5)

    def test_traces_grouping(self):
        tracer = Tracer()
        _make_trace(tracer, [("a", "op"), ("b", "op2")])
        grouped = tracer.traces()
        assert len(grouped) == 1
        spans = next(iter(grouped.values()))
        assert len(spans) == 3  # server a, client, server b


class TestTracerMemory:
    """Regression: the per-trace verdict map must not grow unboundedly."""

    def test_end_trace_evicts_verdict(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.start_trace()
        assert tracer.open_traces == 1
        assert tracer.is_sampled(trace)
        tracer.end_trace(trace)
        assert tracer.open_traces == 0
        # Ended traces read as unsampled; spans already recorded remain.
        assert not tracer.is_sampled(trace)

    def test_end_trace_tolerates_unknown_ids(self):
        tracer = Tracer()
        tracer.end_trace(12345)
        trace = tracer.start_trace()
        tracer.end_trace(trace)
        tracer.end_trace(trace)     # double-end is fine
        assert tracer.open_traces == 0

    def test_experiment_run_leaves_no_open_traces(self):
        # Regression: before end_trace the verdict map kept one entry
        # per injected request for the life of the tracer.
        from repro.app.service import Deployment
        from repro.app.workloads import build_redis
        from repro.hw import PLATFORM_A
        from repro.loadgen import LoadSpec
        from repro.runtime import ExperimentConfig, run_experiment
        tracer = Tracer(sample_rate=0.5, seed=11)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=3, tracer=tracer)
        result = run_experiment(Deployment.single(build_redis()),
                                LoadSpec.open_loop(2000), config)
        assert result.service("redis").requests > 10
        assert tracer.open_traces == 0

    def test_reset_restores_fresh_state(self):
        tracer = Tracer(sample_rate=1.0)
        _make_trace(tracer, [("a", "op"), ("b", "op2")])
        tracer.start_trace()    # left open on purpose
        assert tracer.spans and tracer.open_traces > 0
        tracer.reset()
        assert tracer.spans == []
        assert tracer.open_traces == 0
        # Id counters restart like a fresh tracer's.
        trace = tracer.start_trace()
        assert trace == 1
        span = tracer.start_span(trace, "svc", "op", SpanKind.SERVER, 0.0)
        assert span.span_id == 1


class TestDependencyGraph:
    def test_two_tier_chain(self):
        tracer = Tracer()
        for _ in range(3):
            _make_trace(tracer, [("frontend", "get"), ("backend", "fetch")])
        graph = extract_dependency_graph(tracer.finished_spans())
        assert graph.root_services == ["frontend"]
        assert graph.downstreams("frontend") == ["backend"]
        stats = graph.edge("frontend", "backend")
        assert stats.calls == 3
        assert stats.operations == {"fetch": 3}
        assert stats.request_bytes.mean == pytest.approx(100.0)

    def test_three_tier_chain_topological_order(self):
        tracer = Tracer()
        _make_trace(tracer, [("a", "x"), ("b", "y"), ("c", "z")])
        graph = extract_dependency_graph(tracer.finished_spans())
        order = graph.services()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_operation_mix_collected(self):
        tracer = Tracer()
        _make_trace(tracer, [("a", "read")])
        _make_trace(tracer, [("a", "read")])
        _make_trace(tracer, [("a", "write")])
        graph = extract_dependency_graph(tracer.finished_spans())
        assert graph.operation_mix["a"] == {"read": 2.0, "write": 1.0}

    def test_fanout_counted_per_parent(self):
        tracer = Tracer()
        trace = tracer.start_trace()
        root = tracer.start_span(trace, "root", "op", SpanKind.SERVER, 0.0)
        for i in range(3):
            client = tracer.start_span(trace, "root", "call", SpanKind.CLIENT,
                                       0.001, parent_id=root.span_id)
            child = tracer.start_span(trace, "leaf", "op", SpanKind.SERVER,
                                      0.002, parent_id=client.span_id)
            child.finish(0.003)
            client.finish(0.004)
        root.finish(0.01)
        graph = extract_dependency_graph(tracer.finished_spans())
        assert graph.edge("root", "leaf").calls_per_parent == pytest.approx(3.0)

    def test_empty_spans_rejected(self):
        with pytest.raises(ProfilingError):
            extract_dependency_graph([])

    def test_missing_edge_rejected(self):
        tracer = Tracer()
        _make_trace(tracer, [("a", "op")])
        graph = extract_dependency_graph(tracer.finished_spans())
        with pytest.raises(ProfilingError):
            graph.edge("a", "ghost")

    def test_socialnet_runtime_traces_extract_to_dag(self):
        # Integration: real runtime traces from the Social Network.
        from repro.app.workloads.socialnet import social_network_deployment
        from repro.hw import PLATFORM_A
        from repro.loadgen import LoadSpec
        from repro.runtime import ExperimentConfig, run_experiment
        from repro.tracing import Tracer as T
        tracer = T(sample_rate=1.0)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                  seed=2, tracer=tracer)
        run_experiment(social_network_deployment(), LoadSpec.open_loop(600),
                       config)
        graph = extract_dependency_graph(tracer.finished_spans())
        assert "frontend" in graph.root_services
        assert "social-graph-service" in graph.services()
        # home-timeline calls both the social graph and post storage.
        downstream = set(graph.downstreams("home-timeline-service"))
        assert {"social-graph-service", "post-storage-service"} <= downstream
