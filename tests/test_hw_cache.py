"""Unit + property tests for the cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import (
    LINE_BYTES,
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
    generate_access_stream,
    miss_fraction,
)
from repro.hw.ir import MemAccessSpec, MemPattern
from repro.util.errors import ConfigurationError


def _cfg(size, assoc=8, name="test", latency=4):
    return CacheConfig(name=name, size_bytes=size, associativity=assoc,
                       latency_cycles=latency)


class TestCacheConfig:
    def test_num_sets(self):
        assert _cfg(32 * 1024, assoc=8).num_sets == 64

    def test_size_below_line_rejected(self):
        with pytest.raises(ConfigurationError):
            _cfg(32)

    def test_non_divisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, 8, 4)

    def test_scaled_keeps_associativity(self):
        scaled = _cfg(32 * 1024, assoc=8).scaled(0.5)
        assert scaled.associativity == 8
        assert scaled.size_bytes == 16 * 1024

    def test_scaled_never_below_one_set(self):
        scaled = _cfg(1024, assoc=8).scaled(0.01)
        assert scaled.num_sets == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            _cfg(1024).scaled(0.0)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(_cfg(4096))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True   # same line
        assert cache.access(64) is False  # next line

    def test_sequential_fit_all_hits_after_warmup(self):
        cache = SetAssociativeCache(_cfg(8192))
        addresses = [i * LINE_BYTES for i in range(64)]  # 4KB working set
        cache.access_many(addresses)     # warm-up: all cold misses
        cache.reset_stats()
        cache.access_many(addresses * 3)
        assert cache.miss_rate == 0.0

    def test_sequential_overflow_all_miss(self):
        # Working set 2x the cache: LRU sequential loop thrashes entirely.
        cache = SetAssociativeCache(_cfg(4096, assoc=64))
        addresses = [i * LINE_BYTES for i in range(128)]  # 8KB
        cache.access_many(addresses)
        cache.reset_stats()
        cache.access_many(addresses * 2)
        assert cache.miss_rate == 1.0

    def test_lru_evicts_least_recent(self):
        # 1 set, 2 ways: A, B, A, C -> C evicts B.
        cache = SetAssociativeCache(CacheConfig("tiny", 128, 2, 1))
        a, b, c = 0, 128, 256  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)
        cache.access(c)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_flush_clears_state(self):
        cache = SetAssociativeCache(_cfg(4096))
        cache.access(0)
        cache.flush()
        assert cache.accesses == 0
        assert cache.access(0) is False

    def test_miss_rate_idle_is_zero(self):
        assert SetAssociativeCache(_cfg(4096)).miss_rate == 0.0


class TestMissFraction:
    def test_sequential_fits(self):
        spec = MemAccessSpec(wset_bytes=4096, accesses=10)
        assert miss_fraction(spec, 8192) == 0.0

    def test_sequential_overflows(self):
        spec = MemAccessSpec(wset_bytes=16384, accesses=10)
        assert miss_fraction(spec, 8192) == 1.0

    def test_random_partial(self):
        spec = MemAccessSpec(wset_bytes=8192, accesses=10,
                             pattern=MemPattern.RANDOM)
        assert miss_fraction(spec, 4096) == pytest.approx(0.5)

    def test_zero_cache_always_misses(self):
        spec = MemAccessSpec(wset_bytes=64, accesses=1)
        assert miss_fraction(spec, 0) == 1.0

    @given(
        wset_exp=st.integers(6, 24),
        cache_exp=st.integers(6, 24),
        pattern=st.sampled_from(list(MemPattern)),
    )
    def test_fraction_in_unit_interval(self, wset_exp, cache_exp, pattern):
        spec = MemAccessSpec(wset_bytes=2**wset_exp, accesses=1, pattern=pattern)
        frac = miss_fraction(spec, 2**cache_exp)
        assert 0.0 <= frac <= 1.0

    @given(wset_exp=st.integers(7, 20))
    def test_monotone_in_cache_size(self, wset_exp):
        spec = MemAccessSpec(wset_bytes=2**wset_exp, accesses=1,
                             pattern=MemPattern.RANDOM)
        fracs = [miss_fraction(spec, 2**e) for e in range(6, 22)]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))


class TestClosedFormMatchesSimulation:
    """The paper's §4.4.4 LRU claim, validated against the simulator."""

    @pytest.mark.parametrize("wset_kb,cache_kb,expected", [
        (4, 8, 0.0),   # fits -> all hit
        (16, 8, 1.0),  # overflows -> all miss
    ])
    def test_sequential_threshold(self, wset_kb, cache_kb, expected):
        spec = MemAccessSpec(wset_bytes=wset_kb * 1024, accesses=1)
        cache = SetAssociativeCache(_cfg(cache_kb * 1024, assoc=16))
        rng = np.random.default_rng(0)
        lines = wset_kb * 1024 // LINE_BYTES
        stream = generate_access_stream(spec, rng, length=lines * 6)
        cache.access_many(stream[:lines])  # warm up one sweep
        cache.reset_stats()
        cache.access_many(stream[lines:])
        assert cache.miss_rate == pytest.approx(expected, abs=0.02)
        assert miss_fraction(spec, cache_kb * 1024) == expected

    def test_random_closed_form_close_to_sim(self):
        spec = MemAccessSpec(wset_bytes=64 * 1024, accesses=1,
                             pattern=MemPattern.RANDOM)
        cache = SetAssociativeCache(_cfg(32 * 1024, assoc=8))
        rng = np.random.default_rng(1)
        stream = generate_access_stream(spec, rng, length=20000)
        cache.access_many(stream[:4000])
        cache.reset_stats()
        cache.access_many(stream[4000:])
        assert cache.miss_rate == pytest.approx(
            miss_fraction(spec, 32 * 1024), abs=0.08
        )


class TestGenerateAccessStream:
    def test_sequential_wraps(self):
        spec = MemAccessSpec(wset_bytes=256, accesses=1)
        stream = generate_access_stream(spec, np.random.default_rng(0), 8)
        assert list(stream) == [0, 64, 128, 192, 0, 64, 128, 192]

    def test_pointer_chase_covers_all_lines(self):
        spec = MemAccessSpec(wset_bytes=1024, accesses=1,
                             pattern=MemPattern.POINTER_CHASE)
        stream = generate_access_stream(spec, np.random.default_rng(0), 16)
        assert len(set(stream.tolist())) == 16

    def test_random_stays_in_wset(self):
        spec = MemAccessSpec(wset_bytes=512, accesses=1,
                             pattern=MemPattern.RANDOM)
        stream = generate_access_stream(spec, np.random.default_rng(0), 100)
        assert stream.max() < 512
        assert stream.min() >= 0

    def test_base_offset_applied(self):
        spec = MemAccessSpec(wset_bytes=128, accesses=1)
        stream = generate_access_stream(spec, np.random.default_rng(0), 4,
                                        base=1 << 20)
        assert stream.min() >= 1 << 20

    def test_zero_length_rejected(self):
        spec = MemAccessSpec(wset_bytes=128, accesses=1)
        with pytest.raises(ConfigurationError):
            generate_access_stream(spec, np.random.default_rng(0), 0)


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            l1i=_cfg(32 * 1024, name="l1i"),
            l1d=_cfg(32 * 1024, name="l1d"),
            l2=_cfg(1024 * 1024, name="l2", latency=14),
            llc=_cfg(8 * 1024 * 1024, assoc=16, name="llc", latency=50),
            memory_latency_cycles=200,
        )

    def test_monotonicity_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                l1i=_cfg(32 * 1024),
                l1d=_cfg(64 * 1024),
                l2=_cfg(32 * 1024),
                llc=_cfg(8 * 1024 * 1024, assoc=16),
                memory_latency_cycles=200,
            )

    def test_load_latency_l1_hit(self):
        h = self._hierarchy()
        spec = MemAccessSpec(wset_bytes=4096, accesses=1)
        assert h.load_latency(spec) == pytest.approx(4.0)

    def test_load_latency_memory_bound(self):
        h = self._hierarchy()
        spec = MemAccessSpec(wset_bytes=64 * 1024 * 1024, accesses=1)
        assert h.load_latency(spec) == pytest.approx(200.0)

    def test_load_latency_monotone_in_wset(self):
        h = self._hierarchy()
        latencies = [
            h.load_latency(MemAccessSpec(wset_bytes=2**e, accesses=1))
            for e in range(10, 27)
        ]
        assert all(a <= b for a, b in zip(latencies, latencies[1:]))

    def test_effective_sizes_scale(self):
        h = self._hierarchy().with_effective_sizes(llc_factor=0.5)
        assert h.llc.size_bytes == 4 * 1024 * 1024

    def test_data_miss_profile_keys(self):
        h = self._hierarchy()
        profile = h.data_miss_profile(MemAccessSpec(wset_bytes=4096, accesses=1))
        assert set(profile) == {"l1d", "l2", "llc"}
