"""Unit tests for the ISA model."""

import pytest

from repro.isa import (
    HASWELL,
    SKYLAKE_SERVER,
    IForm,
    InstructionCategory,
    OperandKind,
    PortGroup,
    RegisterClass,
    RegisterFile,
    catalog,
    iform,
    iform_names,
)
from repro.isa.instructions import feature_vector
from repro.isa.ports import ALL_UARCHES, PortGroupSpec
from repro.util.errors import ConfigurationError


class TestRegisterFile:
    def test_sixteen_gprs(self):
        assert len(RegisterFile().gprs) == 16

    def test_reserved_registers_excluded_from_pool(self):
        rf = RegisterFile()
        free_names = {reg.name for reg in rf.free_gprs()}
        # Fig. 3 reserves r9 (loop counter), r10 (base), r11 (chase), r8 (mask).
        for reserved in ("r8", "r9", "r10", "r11", "rsp", "rbp"):
            assert reserved not in free_names

    def test_pool_for_xmm_is_full(self):
        rf = RegisterFile()
        assert len(rf.pool(RegisterClass.XMM)) == 16

    def test_by_name(self):
        assert RegisterFile().by_name("rax").reg_class is RegisterClass.GPR

    def test_unknown_register_raises(self):
        with pytest.raises(ConfigurationError):
            RegisterFile().by_name("r99")

    def test_unknown_reserved_name_raises(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(reserved_names=("bogus",))

    def test_flags_has_no_pool(self):
        with pytest.raises(ConfigurationError):
            RegisterFile().pool(RegisterClass.FLAGS)


class TestCatalog:
    def test_catalog_covers_every_category(self):
        present = {form.category for form in catalog().values()}
        assert present == set(InstructionCategory)

    def test_crc32_is_mul_port_three_cycles(self):
        # The paper's §4.4.2 example: CRC32 takes 3 cycles on port 1 only.
        form = iform("CRC32_r64_r64")
        assert form.latency == 3.0
        assert set(form.port_uops) == {PortGroup.MUL}

    def test_simple_add_is_single_alu_uop(self):
        form = iform("ADD_r64_r64")
        assert form.uops == 1
        assert form.port_uops[PortGroup.ALU] == 1
        assert form.latency == 1.0

    def test_load_forms_read_memory(self):
        assert iform("MOV_r64_m64").reads_mem
        assert not iform("MOV_r64_m64").writes_mem

    def test_store_forms_write_memory(self):
        assert iform("MOV_m64_r64").writes_mem

    def test_lock_forms_flagged(self):
        form = iform("LOCK_ADD_m64_r64")
        assert form.is_lock
        assert form.latency >= 15.0

    def test_rep_forms_have_per_element_cost(self):
        form = iform("REP_MOVSB")
        assert form.is_rep
        assert form.rep_uops_per_element > 0

    def test_branches_flagged(self):
        for name in ("JZ_rel", "JNZ_rel", "JMP_rel", "CALL_rel", "RET"):
            assert iform(name).is_branch

    def test_unknown_iform_raises(self):
        with pytest.raises(ConfigurationError):
            iform("FROB_r64")

    def test_iform_names_filter_by_category(self):
        controls = iform_names(InstructionCategory.CONTROL)
        assert "JZ_rel" in controls
        assert "ADD_r64_r64" not in controls

    def test_all_sizes_positive(self):
        assert all(form.size_bytes > 0 for form in catalog().values())

    def test_invalid_iform_construction(self):
        with pytest.raises(ConfigurationError):
            IForm("BAD", InstructionCategory.CONTROL, (), {}, 1.0)
        with pytest.raises(ConfigurationError):
            IForm("BAD", InstructionCategory.CONTROL, (),
                  {PortGroup.ALU: 1}, -1.0)

    def test_feature_vectors_distinguish_crc_from_add(self):
        assert feature_vector(iform("CRC32_r64_r64")) != feature_vector(
            iform("ADD_r64_r64")
        )

    def test_feature_vector_length_consistent(self):
        lengths = {len(feature_vector(f)) for f in catalog().values()}
        assert len(lengths) == 1


class TestUArch:
    def test_three_uarches_defined(self):
        assert set(ALL_UARCHES) == {"skylake-server", "skylake-client", "haswell"}

    def test_skylake_wider_branch_than_haswell(self):
        skl = SKYLAKE_SERVER.group(PortGroup.BRANCH).ports
        hsw = HASWELL.group(PortGroup.BRANCH).ports
        assert skl > hsw

    def test_haswell_smaller_rob(self):
        assert HASWELL.rob_size < SKYLAKE_SERVER.rob_size

    def test_port_group_cycles(self):
        spec = PortGroupSpec(ports=4)
        assert spec.cycles_for(8) == pytest.approx(2.0)

    def test_divider_not_pipelined(self):
        spec = SKYLAKE_SERVER.group(PortGroup.DIV)
        assert spec.recip_throughput > 1.0

    def test_negative_uops_raise(self):
        with pytest.raises(ConfigurationError):
            PortGroupSpec(ports=1).cycles_for(-1)

    def test_missing_group_raises(self):
        from repro.isa.ports import UArch
        bare = UArch("bare", 4, 4, 4, 100, 10, 10, 15.0, 1024, 12, {})
        with pytest.raises(ConfigurationError):
            bare.group(PortGroup.ALU)
