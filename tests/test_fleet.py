"""The fleet control plane: store, state machine, scheduler, client, CLI."""

import json
import os

import pytest

from repro import (
    CloneRequest,
    Deployment,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
)
from repro.fleet import (
    CloneJobSpec,
    FleetClient,
    FleetScheduler,
    JobState,
    JobStore,
    execute_job,
)
from repro.fleet.__main__ import main as fleet_main
from repro.profiling import ProfilingBudget
from repro.telemetry import Telemetry
from repro.util.errors import (
    ArtifactIntegrityError,
    ConfigurationError,
    JobStateError,
)
from repro.validation import FidelityGate, RemediationPolicy

FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)
LOAD = LoadSpec.open_loop(2000)
CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015, seed=5)


def _request(**overrides):
    fields = dict(
        deployment=Deployment.single(build_memcached()),
        load=LOAD, config=CONFIG, seed=17, budget=FAST_BUDGET,
        fine_tune_tiers=True, max_tune_iterations=1,
    )
    fields.update(overrides)
    return CloneRequest(**fields)


def _states(record):
    return [edge.to_state for edge in record.history]


class TestJobStateMachine:
    def test_happy_path(self):
        from repro.fleet.job import CloneJobRecord
        spec = CloneJobSpec(request=_request())
        record = CloneJobRecord(job_id="x-0", spec=spec,
                                spec_digest=spec.digest())
        for state in (JobState.PROFILING, JobState.TUNING,
                      JobState.VALIDATING, JobState.PUBLISHED,
                      JobState.RETIRED):
            record.transition(state)
        assert record.state is JobState.RETIRED
        assert record.terminal

    def test_illegal_transitions_rejected(self):
        from repro.fleet.job import CloneJobRecord
        spec = CloneJobSpec(request=_request())
        record = CloneJobRecord(job_id="x-0", spec=spec,
                                spec_digest=spec.digest())
        with pytest.raises(JobStateError):
            record.transition(JobState.PUBLISHED)  # submitted → published
        record.transition(JobState.PROFILING)
        with pytest.raises(JobStateError):
            record.transition(JobState.VALIDATING)
        record.transition(JobState.TUNING)
        record.transition(JobState.TUNING)  # remediation self-loop is legal
        record.transition(JobState.PUBLISHED)
        with pytest.raises(JobStateError):
            record.transition(JobState.FAILED)  # published is final-ish
        record.transition(JobState.RETIRED)
        with pytest.raises(JobStateError):
            record.transition(JobState.SUBMITTED)

    def test_spec_digest_ignores_scheduling_metadata(self):
        request = _request()
        a = CloneJobSpec(request=request, name="a", priority=5)
        b = CloneJobSpec(request=request, name="b", priority=-1)
        assert a.digest() == b.digest()

    def test_spec_validated(self):
        with pytest.raises(ConfigurationError):
            CloneJobSpec(request="clone memcached please")
        with pytest.raises(ConfigurationError):
            CloneJobSpec(request=_request(), priority=True)


class TestJobStore:
    def test_submit_allocates_unique_ids(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = CloneJobSpec(request=_request())
        a = store.submit(spec)
        b = store.submit(spec)
        assert a.job_id != b.job_id
        assert a.spec_digest == b.spec_digest
        assert a.job_id.startswith(a.spec_digest[:12])
        assert {r.job_id for r in store.list()} == {a.job_id, b.job_id}

    def test_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request(), name="rt"))
        loaded = store.get(record.job_id)
        assert loaded.spec.name == "rt"
        assert loaded.state is JobState.SUBMITTED
        assert loaded.spec.request.digest() == record.spec_digest

    def test_corrupt_record_skipped_not_trusted(self, tmp_path):
        store = JobStore(str(tmp_path))
        keep = store.submit(CloneJobSpec(request=_request()))
        lose = store.submit(CloneJobSpec(request=_request(seed=23)))
        path = store.record_path(lose.job_id)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert [r.job_id for r in store.list()] == [keep.job_id]
        with pytest.raises((ArtifactIntegrityError, FileNotFoundError)):
            store.get(lose.job_id)

    def test_lease_exclusivity(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request()))
        assert store.claim_lease(record.job_id)
        assert not store.claim_lease(record.job_id)
        assert store.lease_pid(record.job_id) == os.getpid()
        store.release_lease(record.job_id)
        assert store.claim_lease(record.job_id)

    def test_recover_requeues_dead_owner(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request()))
        store.transition(record, JobState.PROFILING)
        # A lease held by a dead pid: the worker crashed.
        store.claim_lease(record.job_id, pid=2 ** 22 + 12345)
        assert store.recover() == [record.job_id]
        requeued = store.get(record.job_id)
        assert requeued.state is JobState.SUBMITTED
        assert requeued.history[-1].reason == "recovered"
        assert not os.path.exists(store.lease_path(record.job_id))

    def test_recover_leaves_live_owner_alone(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request()))
        store.transition(record, JobState.PROFILING)
        store.claim_lease(record.job_id)  # this very process: alive
        assert store.recover() == []
        assert store.get(record.job_id).state is JobState.PROFILING


class TestFleetEndToEnd:
    @pytest.fixture(scope="class")
    def published(self, tmp_path_factory):
        """One store with two identical-spec jobs run serially."""
        root = str(tmp_path_factory.mktemp("fleet"))
        client = FleetClient(root)
        first = client.submit(_request(), name="first")
        second = client.submit(_request(), name="second")
        session = Telemetry(label="fleet-test")
        scheduler = FleetScheduler(client.store, executor="serial",
                                   telemetry=session)
        outcomes = scheduler.run_until_idle()
        return client, first, second, outcomes, session

    def test_jobs_publish(self, published):
        client, first, second, outcomes, _ = published
        assert [o.state for o in outcomes] == [JobState.PUBLISHED] * 2
        for record in (client.get(first.job_id), client.get(second.job_id)):
            assert record.state is JobState.PUBLISHED
            assert record.result_digest

    def test_lifecycle_recorded(self, published):
        client, first, second, _, _ = published
        states = _states(client.get(first.job_id))
        assert states == [JobState.PROFILING, JobState.TUNING,
                          JobState.PUBLISHED]
        # The second job reused the stored profile: no profiling phase.
        assert _states(client.get(second.job_id)) == [
            JobState.TUNING, JobState.PUBLISHED]

    def test_identical_specs_identical_results(self, published):
        client, first, second, _, _ = published
        a = client.get(first.job_id)
        b = client.get(second.job_id)
        assert a.result_digest == b.result_digest
        assert (client.result(a.job_id).synthetic.services.keys()
                == client.result(b.job_id).synthetic.services.keys())

    def test_shared_cache_and_profile_reuse_observable(self, published):
        client, _, _, _, session = published

        def total(name):
            metric = session.registry.get(name)
            return metric.total() if metric is not None else 0

        assert total("ditto_fleet_profile_reuse_total") >= 1
        # The second job's tuning measurements come from the first
        # job's shared-cache entries.
        assert total("ditto_fleet_shared_cache_stores_total") >= 1
        assert total("ditto_fleet_shared_cache_hits_total") >= 1
        # Terminal-state accounting lives on the store's registry.
        completed = client.store.registry.get(
            "ditto_fleet_jobs_completed_total")
        assert completed is not None and completed.total() == 2

    def test_result_artifacts_on_disk(self, published):
        client, first, _, _, _ = published
        store = client.store
        assert os.path.exists(store.result_path(first.job_id))
        bundle = json.load(open(store.bundle_path(first.job_id)))
        assert bundle["entry_service"] == "memcached"
        result = client.result(first.job_id)
        assert result.result_digest == client.get(first.job_id).result_digest
        assert result.executor == "serial"
        assert "memcached" in result.tuning_iterations

    def test_retire_published(self, published):
        client, first, _, _, _ = published
        client.retire(first.job_id)
        assert client.get(first.job_id).state is JobState.RETIRED
        with pytest.raises(JobStateError):
            client.retire(first.job_id)


class TestValidationAndFailure:
    def test_gated_job_writes_fidelity_artifact(self, tmp_path):
        client = FleetClient(str(tmp_path))
        record = client.submit(_request(validate=True))
        outcomes = client.run_until_idle(executor="serial")
        assert outcomes[0].state is JobState.PUBLISHED
        assert JobState.VALIDATING in _states(client.get(record.job_id))
        document = json.load(
            open(client.store.fidelity_path(record.job_id)))
        assert document["format"] == "ditto-fleet-fidelity/1"
        assert document["report"]["passed"] is True
        assert client.result(record.job_id).fidelity["passed"] is True

    def test_unsatisfiable_gate_fails_the_job(self, tmp_path):
        impossible = FidelityGate({"ipc": 1e-12})
        client = FleetClient(str(tmp_path))
        record = client.submit(_request(
            validate=impossible,
            remediation=RemediationPolicy(max_attempts=1)))
        outcomes = client.run_until_idle(executor="serial")
        assert outcomes[0].state is JobState.FAILED
        final = client.get(record.job_id)
        assert final.state is JobState.FAILED
        assert "FidelityGateError" in final.error
        # The remediation ladder shows up as validating → tuning edges.
        states = _states(final)
        assert states.count(JobState.VALIDATING) >= 2
        assert final.attempts >= 1
        # And a failed job can be resubmitted.
        client.store.transition(final, JobState.SUBMITTED,
                                reason="resubmitted")
        assert client.get(record.job_id).state is JobState.SUBMITTED


class TestCancellation:
    def test_cancel_before_start(self, tmp_path):
        client = FleetClient(str(tmp_path))
        record = client.submit(_request())
        cancelled = client.cancel(record.job_id)
        assert cancelled.state is JobState.CANCELLED
        assert client.run_until_idle(executor="serial") == []
        assert client.get(record.job_id).state is JobState.CANCELLED

    def test_cancel_marker_observed_at_phase_boundary(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request()))
        with open(store.cancel_path(record.job_id), "w") as handle:
            handle.write("now\n")
        outcome = execute_job(store.root, record.job_id,
                              collect_telemetry=False)
        assert outcome.state is JobState.CANCELLED
        final = store.get(record.job_id)
        assert final.state is JobState.CANCELLED
        assert "cancel" in final.error
        # The store stays healthy: listing and resubmission still work.
        assert [r.job_id for r in store.list()] == [record.job_id]
        store.submit(CloneJobSpec(request=_request()))

    def test_cancel_terminal_job_is_a_no_op(self, tmp_path):
        client = FleetClient(str(tmp_path))
        record = client.submit(_request())
        client.cancel(record.job_id)
        again = client.cancel(record.job_id)
        assert again.state is JobState.CANCELLED


class TestScheduler:
    def test_priority_order(self, tmp_path):
        client = FleetClient(str(tmp_path))
        low = client.submit(_request(), name="low", priority=0)
        high = client.submit(_request(seed=23), name="high", priority=5)
        outcomes = client.run_until_idle(executor="serial")
        assert [o.job_id for o in outcomes] == [high.job_id, low.job_id]

    def test_new_submissions_drain_in_next_round(self, tmp_path):
        client = FleetClient(str(tmp_path))
        client.submit(_request())
        outcomes = client.run_until_idle(executor="serial")
        assert len(outcomes) == 1
        client.submit(_request(seed=23))
        assert len(client.run_until_idle(executor="serial")) == 1
        assert len(client.list((JobState.PUBLISHED,))) == 2

    def test_watch_returns_terminal_record(self, tmp_path):
        client = FleetClient(str(tmp_path))
        record = client.submit(_request())
        client.run_until_idle(executor="serial")
        final = client.watch(record.job_id, timeout_s=1.0, poll_s=0.01)
        assert final.state is JobState.PUBLISHED

    def test_watch_times_out_on_queued_job(self, tmp_path):
        client = FleetClient(str(tmp_path))
        record = client.submit(_request())
        with pytest.raises(TimeoutError):
            client.watch(record.job_id, timeout_s=0.05, poll_s=0.01)


class TestFleetCLI:
    def test_submit_run_watch_show(self, tmp_path, capsys):
        store = str(tmp_path)
        assert fleet_main(["submit", "--store", store,
                           "--workload", "memcached", "--fast",
                           "--tune-iterations", "1"]) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id
        assert fleet_main(["run", "--store", store,
                           "--executor", "serial", "--telemetry"]) == 0
        assert "1 job(s) finished, 0 failed" in capsys.readouterr().err
        assert fleet_main(["watch", "--store", store, job_id,
                           "--timeout", "5"]) == 0
        assert "published" in capsys.readouterr().out
        assert fleet_main(["show", "--store", store, job_id]) == 0
        shown = capsys.readouterr().out
        assert "submitted -> profiling" in shown
        assert "result digest" in shown

    def test_migrate_submit_run_show(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert fleet_main(["submit", "--store", store,
                           "--workload", "memcached", "--fast",
                           "--tune-iterations", "1"]) == 0
        clone_id = capsys.readouterr().out.strip()
        assert fleet_main(["run", "--store", store,
                           "--executor", "serial"]) == 0
        capsys.readouterr()
        # the published bundle records its platform, so migrate needs
        # no --source-platform; A→A keeps the run cheap
        from repro.fleet.store import JobStore
        bundle = JobStore(store).bundle_path(clone_id)
        assert fleet_main(["migrate", "--store", store,
                           "--bundle", bundle, "--destination", "A",
                           "--duration", "0.05",
                           "--max-tune-iterations", "1"]) == 0
        migrate_id = capsys.readouterr().out.strip()
        assert migrate_id and migrate_id != clone_id
        assert fleet_main(["run", "--store", store,
                           "--executor", "serial"]) == 0
        capsys.readouterr()
        assert fleet_main(["watch", "--store", store, migrate_id,
                           "--timeout", "5"]) == 0
        capsys.readouterr()
        assert fleet_main(["show", "--store", store, migrate_id]) == 0
        shown = capsys.readouterr().out
        assert "submitted -> migrating_preflight" in shown
        assert "migrating_gate -> published" in shown
        assert "fidelity: PASS" in shown

    def test_cancel_exit_codes(self, tmp_path, capsys):
        store = str(tmp_path)
        fleet_main(["submit", "--store", store, "--workload", "memcached",
                    "--fast"])
        job_id = capsys.readouterr().out.strip()
        assert fleet_main(["cancel", "--store", store, job_id]) == 0
        capsys.readouterr()
        assert fleet_main(["watch", "--store", store, job_id,
                           "--timeout", "1"]) == 2

    def test_unknown_job_is_an_error_not_a_traceback(self, tmp_path,
                                                     capsys):
        assert fleet_main(["show", "--store", str(tmp_path),
                           "no-such-job"]) == 1
        assert "error" in capsys.readouterr().err
