"""Unit tests for the syscall cost models."""

import pytest

from repro.hw import PLATFORM_A, CoreModel
from repro.kernelsim import (
    SYSCALL_TABLE,
    SyscallInvocation,
    kernel_block_for,
    kernel_code_footprint,
)
from repro.kernelsim.syscalls import DeviceOp, context_switch_block
from repro.util.errors import ConfigurationError


class TestSyscallTable:
    def test_core_io_syscalls_present(self):
        for name in ("read", "write", "pread", "recv", "send", "sendmsg",
                     "epoll_wait", "accept", "futex", "clone"):
            assert name in SYSCALL_TABLE

    def test_network_syscalls_marked(self):
        assert SYSCALL_TABLE["sendmsg"].device == "net_tx"
        assert SYSCALL_TABLE["recv"].device == "net_rx"

    def test_disk_syscalls_marked(self):
        assert SYSCALL_TABLE["pread"].device == "disk"

    def test_clone_is_expensive(self):
        assert (SYSCALL_TABLE["clone"].base_instructions
                > 3 * SYSCALL_TABLE["read"].base_instructions)

    def test_network_stack_heavier_than_vfs(self):
        # TCP traversal costs more instructions than a cached file read.
        assert (SYSCALL_TABLE["sendmsg"].base_instructions
                > SYSCALL_TABLE["read"].base_instructions)


class TestSyscallInvocation:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SyscallInvocation("frobnicate")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            SyscallInvocation("read", nbytes=-1)

    def test_spec_lookup(self):
        assert SyscallInvocation("read").spec.name == "read"


class TestKernelBlocks:
    def test_block_instruction_count_tracks_table(self):
        invocation = SyscallInvocation("epoll_wait")
        block = kernel_block_for(invocation)
        expected = SYSCALL_TABLE["epoll_wait"].base_instructions
        assert block.instructions_per_iteration == pytest.approx(
            expected, rel=0.2)

    def test_payload_copy_adds_rep_move(self):
        small = kernel_block_for(SyscallInvocation("read", nbytes=0))
        big = kernel_block_for(SyscallInvocation("read", nbytes=64 * 1024))
        assert "REP_MOVSB" not in small.iform_counts
        assert big.iform_counts["REP_MOVSB"] == 1.0
        assert big.rep_elements == 64 * 1024

    def test_bigger_payload_costs_more_cycles(self):
        core = CoreModel(PLATFORM_A.context())
        t_small = core.time_block(kernel_block_for(
            SyscallInvocation("send", nbytes=128)))
        t_big = core.time_block(kernel_block_for(
            SyscallInvocation("send", nbytes=256 * 1024)))
        assert t_big.cycles > t_small.cycles * 1.5

    def test_kernel_block_priced_by_core_model(self):
        core = CoreModel(PLATFORM_A.context())
        timing = core.time_block(kernel_block_for(SyscallInvocation("read")))
        assert timing.cycles > 0
        assert timing.instructions > 1000

    def test_kernel_blocks_have_branches(self):
        block = kernel_block_for(SyscallInvocation("accept"))
        assert block.branches
        assert block.branches[0].static_count > 1


class TestKernelCodeFootprint:
    def test_distinct_syscalls_accumulate(self):
        footprint = kernel_code_footprint(
            [SyscallInvocation("read"), SyscallInvocation("sendmsg")])
        expected = (SYSCALL_TABLE["read"].code_bytes
                    + SYSCALL_TABLE["sendmsg"].code_bytes)
        assert footprint == expected

    def test_repeats_counted_once(self):
        once = kernel_code_footprint([SyscallInvocation("read")])
        thrice = kernel_code_footprint([SyscallInvocation("read")] * 3)
        assert once == thrice

    def test_accepts_plain_names(self):
        assert kernel_code_footprint(["read"]) == SYSCALL_TABLE["read"].code_bytes


class TestDeviceOp:
    def test_valid_device_kinds(self):
        DeviceOp("disk", 100)
        DeviceOp("net_tx", 100)
        DeviceOp("net_rx", 0)

    def test_invalid_device_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceOp("gpu", 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceOp("disk", -1)


class TestContextSwitch:
    def test_block_has_kernel_shape(self):
        block = context_switch_block()
        assert block.instructions_per_iteration > 1000
        assert block.code_bytes > 0
        assert block.mem
