"""Tests for shareable clone bundles (serialise -> share -> regenerate)."""

import json

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.core import (
    audit_bundle_confidentiality,
    deployment_from_bundle,
    extract_service_features,
    load_bundle,
    save_bundle,
)
from repro.core.bundle import decode_features, encode_features
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import profile_deployment
from repro.runtime import ExperimentConfig, run_experiment
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def memcached_setup():
    deployment = Deployment.single(build_memcached())
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)
    profile = profile_deployment(deployment, LoadSpec.open_loop(100000),
                                 config)
    features = extract_service_features(profile.artifacts("memcached"))
    return deployment, features


@pytest.fixture(scope="module")
def bundle_path(memcached_setup, tmp_path_factory):
    _deployment, features = memcached_setup
    path = tmp_path_factory.mktemp("bundles") / "memcached.json"
    save_bundle({"memcached": features}, path, entry_service="memcached")
    return path


class TestRoundTrip:
    def test_encode_decode_preserves_scalars(self, memcached_setup):
        _deployment, features = memcached_setup
        restored = decode_features(encode_features(features))
        assert restored.service == features.service
        assert restored.mix.instructions_per_request == pytest.approx(
            features.mix.instructions_per_request)
        assert restored.regular_ratio == pytest.approx(
            features.regular_ratio)
        assert restored.hot_code_bytes == features.hot_code_bytes
        assert restored.handler_mix == features.handler_mix

    def test_encode_decode_preserves_distributions(self, memcached_setup):
        _deployment, features = memcached_setup
        restored = decode_features(encode_features(features))
        assert (restored.mix.mix.normalized()
                == features.mix.mix.normalized())
        assert restored.data_wsets == features.data_wsets
        assert restored.instr_wsets == features.instr_wsets
        assert (restored.branches.rate_distribution.counts
                == features.branches.rate_distribution.counts)
        assert restored.deps.raw == features.deps.raw

    def test_counters_roundtrip_derived_metrics(self, memcached_setup):
        _deployment, features = memcached_setup
        restored = decode_features(encode_features(features))
        for metric in ("ipc", "branch", "l1i", "l1d", "l2", "llc"):
            assert restored.target_counters.metric(metric) == pytest.approx(
                features.target_counters.metric(metric), rel=1e-6), metric

    def test_bundle_is_valid_json(self, bundle_path):
        document = json.loads(bundle_path.read_text())
        assert document["format"] == "ditto-clone-bundle"
        assert "memcached" in document["tiers"]

    def test_load_bundle(self, bundle_path):
        features, entry, placements = load_bundle(bundle_path)
        assert entry == "memcached"
        assert set(features) == {"memcached"}

    def test_wrong_format_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError):
            load_bundle(bad)

    def test_unknown_entry_rejected(self, memcached_setup, tmp_path):
        _deployment, features = memcached_setup
        with pytest.raises(ConfigurationError):
            save_bundle({"memcached": features}, tmp_path / "x.json",
                        entry_service="ghost")


class TestRegenerationFromBundle:
    def test_bundle_regenerates_runnable_deployment(self, bundle_path):
        synthetic = deployment_from_bundle(bundle_path)
        result = run_experiment(
            synthetic, LoadSpec.open_loop(50000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=9))
        assert result.latency.completed > 100
        assert result.service("memcached").ipc > 0.2

    def test_bundle_clone_matches_direct_clone(self, memcached_setup,
                                               bundle_path):
        # Generating from the bundle equals generating from live features.
        from repro.core import generate_program
        _deployment, features = memcached_setup
        direct_program, _ = generate_program(features)
        synthetic = deployment_from_bundle(bundle_path)
        bundle_program = synthetic.services["memcached"].program
        direct_total = sum(b.instructions_per_request
                           for b in direct_program.all_blocks())
        bundle_total = sum(b.instructions_per_request
                           for b in bundle_program.all_blocks())
        assert bundle_total == pytest.approx(direct_total, rel=1e-6)


class TestConfidentiality:
    def test_no_original_identifiers_leak(self, memcached_setup,
                                          bundle_path):
        deployment, _features = memcached_setup
        leaks = audit_bundle_confidentiality(bundle_path, deployment)
        assert leaks == []

    def test_audit_detects_planted_leak(self, memcached_setup, tmp_path):
        deployment, features = memcached_setup
        path = tmp_path / "leaky.json"
        save_bundle({"memcached": features}, path,
                    entry_service="memcached")
        text = path.read_text()
        block_name = next(iter(
            deployment.services["memcached"].program.all_blocks())).name
        path.write_text(text[:-2] + f', "debug": "{block_name}"}}')
        leaks = audit_bundle_confidentiality(path, deployment)
        assert leaks
