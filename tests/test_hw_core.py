"""Unit tests for the analytical core model and top-down accounting."""

import pytest

from repro.hw import (
    PLATFORM_A,
    PLATFORM_B,
    BlockSpec,
    BranchSpec,
    CoreModel,
    DependencyProfile,
    MemAccessSpec,
    MemPattern,
    TopDownBreakdown,
)
from repro.util.errors import ConfigurationError


def _ctx(**overrides):
    return PLATFORM_A.context(**overrides)


def _alu_block(n=1000, **kwargs):
    return BlockSpec(
        name="alu",
        iform_counts={"ADD_r64_r64": n * 0.6, "XOR_r64_r64": n * 0.2,
                      "MOV_r64_r64": n * 0.2},
        deps=DependencyProfile(raw={64: 1.0}),
        **kwargs,
    )


class TestComputeBound:
    def test_alu_block_ipc_near_width(self):
        # Independent single-uop ALU ops should approach issue width.
        timing = CoreModel(_ctx()).time_block(_alu_block())
        assert 2.5 <= timing.ipc <= 4.0

    def test_dependency_chain_lowers_ipc(self):
        parallel = _alu_block()
        serial = BlockSpec(
            name="serial",
            iform_counts=dict(parallel.iform_counts),
            deps=DependencyProfile(raw={1: 1.0}),
        )
        ipc_parallel = CoreModel(_ctx()).time_block(parallel).ipc
        ipc_serial = CoreModel(_ctx()).time_block(serial).ipc
        assert ipc_serial < ipc_parallel

    def test_divides_are_slow(self):
        divs = BlockSpec(name="div", iform_counts={"DIV_r64": 100},
                         deps=DependencyProfile(raw={64: 1.0}))
        timing = CoreModel(_ctx()).time_block(divs)
        assert timing.ipc < 0.1

    def test_port_pressure_crc_slower_than_add(self):
        # 1000 CRC32s serialise on the single MUL port; adds spread over 4.
        crc = BlockSpec(name="crc", iform_counts={"CRC32_r64_r64": 1000},
                        deps=DependencyProfile(raw={64: 1.0}))
        add = BlockSpec(name="add", iform_counts={"ADD_r64_r64": 1000},
                        deps=DependencyProfile(raw={64: 1.0}))
        core = CoreModel(_ctx())
        assert core.time_block(crc).cycles > core.time_block(add).cycles

    def test_smt_contention_slows_port_bound_block(self):
        block = _alu_block()
        alone = CoreModel(_ctx()).time_block(block)
        shared = CoreModel(_ctx(smt_contention=2.0)).time_block(block)
        assert shared.cycles > alone.cycles

    def test_iterations_scale_linearly(self):
        one = CoreModel(_ctx()).time_block(_alu_block(iterations=1.0))
        ten = CoreModel(_ctx()).time_block(_alu_block(iterations=10.0))
        assert ten.cycles == pytest.approx(10 * one.cycles)
        assert ten.instructions == pytest.approx(10 * one.instructions)


class TestMemoryBound:
    def _mem_block(self, wset, pattern=MemPattern.SEQUENTIAL, chase=0.0):
        return BlockSpec(
            name="mem",
            iform_counts={"MOV_r64_m64": 500, "ADD_r64_r64": 500},
            mem=(MemAccessSpec(wset_bytes=wset, accesses=500, pattern=pattern),),
            deps=DependencyProfile(raw={64: 1.0}, pointer_chase_frac=chase),
        )

    def test_bigger_wset_slower(self):
        core = CoreModel(_ctx())
        small = core.time_block(self._mem_block(16 * 1024))
        large = core.time_block(self._mem_block(64 * 1024 * 1024))
        assert large.cycles > small.cycles
        assert large.llc_misses > small.llc_misses

    def test_l1_resident_has_no_l1d_misses(self):
        timing = CoreModel(_ctx()).time_block(self._mem_block(8 * 1024))
        assert timing.l1d_misses == 0.0
        assert timing.l1d_accesses == 500.0

    def test_l2_resident_misses_l1_only(self):
        timing = CoreModel(_ctx()).time_block(self._mem_block(256 * 1024))
        assert timing.l1d_misses == pytest.approx(500.0)
        assert timing.l2_misses == 0.0

    def test_pointer_chasing_hurts(self):
        core = CoreModel(_ctx())
        parallel = core.time_block(
            self._mem_block(64 * 1024 * 1024, MemPattern.RANDOM, chase=0.0))
        chased = core.time_block(
            self._mem_block(64 * 1024 * 1024, MemPattern.POINTER_CHASE,
                            chase=1.0))
        assert chased.cycles > parallel.cycles

    def test_prefetcher_helps_sequential(self):
        seq = self._mem_block(64 * 1024 * 1024, MemPattern.SEQUENTIAL)
        rand = self._mem_block(64 * 1024 * 1024, MemPattern.RANDOM)
        core = CoreModel(_ctx())
        assert core.time_block(seq).cycles < core.time_block(rand).cycles

    def test_coherence_misses_with_shared_writes(self):
        shared = BlockSpec(
            name="shared",
            iform_counts={"MOV_m64_r64": 100},
            mem=(MemAccessSpec(wset_bytes=4096, accesses=100, write_frac=0.5,
                               shared_frac=0.5),),
        )
        solo = CoreModel(_ctx(active_threads=1)).time_block(shared)
        multi = CoreModel(_ctx(active_threads=4)).time_block(shared)
        assert multi.l1d_misses > solo.l1d_misses

    def test_memory_bytes_counted(self):
        timing = CoreModel(_ctx()).time_block(
            self._mem_block(64 * 1024 * 1024))
        assert timing.memory_bytes > 0


class TestFrontend:
    def test_large_code_footprint_stalls_frontend(self):
        small = BlockSpec(name="s", iform_counts={"ADD_r64_r64": 1000},
                          code_bytes=1024)
        # Reuse distance far beyond L1i: every visit re-misses.
        big = BlockSpec(name="b", iform_counts={"ADD_r64_r64": 1000},
                        code_bytes=256 * 1024)
        core = CoreModel(_ctx(code_reuse_bytes=512 * 1024))
        t_small = core.time_block(small)
        t_big = core.time_block(big)
        assert t_big.l1i_misses > t_small.l1i_misses
        assert t_big.cycles > t_small.cycles

    def test_hot_loop_amortises_imisses(self):
        # A loop body that fits L1i pays the refill once per visit; a
        # single-pass block with the same footprint pays it every time.
        block = BlockSpec(name="loop", iform_counts={"ADD_r64_r64": 1500},
                          code_bytes=4 * 1024, iterations=100)
        once = BlockSpec(name="once", iform_counts={"ADD_r64_r64": 1500},
                         code_bytes=4 * 1024, iterations=1)
        core = CoreModel(_ctx(code_reuse_bytes=512 * 1024))
        per_iter_loop = core.time_block(block).l1i_misses / 100
        per_iter_once = core.time_block(once).l1i_misses
        assert per_iter_loop < per_iter_once

    def test_oversized_loop_body_cannot_amortise(self):
        # A 64KB loop body thrashes a 32KB L1i on every pass.
        block = BlockSpec(name="bigloop", iform_counts={"ADD_r64_r64": 100},
                          code_bytes=64 * 1024, iterations=100)
        core = CoreModel(_ctx(code_reuse_bytes=512 * 1024))
        timing = core.time_block(block)
        assert timing.l1i_misses / 100 >= 6.0


class TestBranches:
    def test_mispredictions_counted(self):
        block = BlockSpec(
            name="br",
            iform_counts={"JNZ_rel": 200, "CMP_r64_imm": 200},
            branches=(BranchSpec(executions=200, taken_rate=0.5,
                                 transition_rate=0.5),),
        )
        timing = CoreModel(_ctx()).time_block(block)
        assert timing.branches == 200
        assert timing.branch_mispredictions > 20

    def test_biased_branches_cheap(self):
        def block(taken, trans):
            return BlockSpec(
                name="br",
                iform_counts={"JNZ_rel": 200, "CMP_r64_imm": 200},
                branches=(BranchSpec(executions=200, taken_rate=taken,
                                     transition_rate=trans),),
            )
        core = CoreModel(_ctx())
        predictable = core.time_block(block(0.99, 0.01))
        random = core.time_block(block(0.5, 0.5))
        assert predictable.branch_mispredictions < random.branch_mispredictions
        assert predictable.cycles < random.cycles


class TestTopDown:
    def test_slots_nonnegative_and_sum(self):
        block = BlockSpec(
            name="mixed",
            iform_counts={"ADD_r64_r64": 500, "MOV_r64_m64": 200,
                          "JNZ_rel": 100},
            mem=(MemAccessSpec(wset_bytes=4 * 1024 * 1024, accesses=200,
                               pattern=MemPattern.RANDOM),),
            branches=(BranchSpec(executions=100, taken_rate=0.5,
                                 transition_rate=0.4),),
        )
        timing = CoreModel(_ctx()).time_block(block)
        td = timing.topdown
        fractions = td.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in fractions.values())
        width = PLATFORM_A.uarch.issue_width
        assert td.total_slots == pytest.approx(timing.cycles * width)

    def test_memory_block_is_backend_bound(self):
        block = BlockSpec(
            name="membound",
            iform_counts={"MOV_r64_m64": 1000},
            mem=(MemAccessSpec(wset_bytes=256 * 1024 * 1024, accesses=1000,
                               pattern=MemPattern.POINTER_CHASE),),
            deps=DependencyProfile(pointer_chase_frac=1.0),
        )
        timing = CoreModel(_ctx()).time_block(block)
        fractions = timing.topdown.fractions()
        assert fractions["backend"] > 0.6

    def test_cpi_contributions_sum_to_cpi(self):
        block = _alu_block()
        timing = CoreModel(_ctx()).time_block(block)
        contributions = timing.topdown.cpi_contributions(
            timing.instructions, PLATFORM_A.uarch.issue_width)
        cpi = timing.cycles / timing.instructions
        assert sum(contributions.values()) == pytest.approx(cpi)


class TestTopDownBreakdown:
    def test_add_and_scale(self):
        a = TopDownBreakdown(4, 1, 1, 2)
        b = TopDownBreakdown(2, 0, 1, 1)
        total = a + b
        assert total.retiring == 6
        assert total.scaled(0.5).backend == pytest.approx(1.5)

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            TopDownBreakdown(-1, 0, 0, 0)

    def test_zero_fractions(self):
        assert TopDownBreakdown.zero().fractions()["retiring"] == 0.0


class TestCrossPlatform:
    def test_haswell_ipc_lower_for_branchy_code(self):
        # Platform B (Haswell) has one taken-branch port and shallower
        # prediction: branch-heavy blocks retire slower.
        block = BlockSpec(
            name="branchy",
            iform_counts={"JNZ_rel": 500, "CMP_r64_imm": 500},
            branches=(BranchSpec(executions=500, taken_rate=0.5,
                                 transition_rate=0.5),),
        )
        ipc_a = CoreModel(PLATFORM_A.context()).time_block(block).ipc
        ipc_b = CoreModel(PLATFORM_B.context()).time_block(block).ipc
        assert ipc_b < ipc_a

    def test_smaller_l2_more_misses_on_b(self):
        # 512KB working set fits platform A's 1MB L2, not B's 256KB.
        block = BlockSpec(
            name="l2sized",
            iform_counts={"MOV_r64_m64": 500},
            mem=(MemAccessSpec(wset_bytes=512 * 1024, accesses=500),),
        )
        t_a = CoreModel(PLATFORM_A.context()).time_block(block)
        t_b = CoreModel(PLATFORM_B.context()).time_block(block)
        assert t_a.l2_misses == 0.0
        assert t_b.l2_misses > 0.0
