"""Unit tests for the fine-tuning loop (§4.5)."""

import math

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_redis
from repro.core import TuningKnobs, extract_service_features, fine_tune
from repro.core.finetune import FineTuneResult, _strip_rpcs
from repro.app.program import ComputeOp, Handler, Program, RpcOp, SyscallOp
from repro.hw import PLATFORM_A
from repro.hw.ir import BlockSpec
from repro.kernelsim.syscalls import SyscallInvocation
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment
from repro.runtime import ExperimentConfig
from repro.util.errors import ConfigurationError

FAST_BUDGET = ProfilingBudget(sampled_requests=6, max_accesses_per_spec=384,
                              max_istream_per_block=1024,
                              branch_outcomes_per_site=96,
                              max_sites_per_population=6,
                              dep_samples_per_block=32,
                              profile_duration_s=0.012)


@pytest.fixture(scope="module")
def redis_features():
    deployment = Deployment.single(build_redis())
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.012, seed=5)
    profile = profile_deployment(deployment, LoadSpec.closed_loop(4),
                                 config, budget=FAST_BUDGET)
    return extract_service_features(profile.artifacts("redis")), config


class TestFineTuneLoop:
    def test_respects_iteration_budget(self, redis_features):
        features, config = redis_features
        result = fine_tune(features, platform_config=config,
                           max_iterations=3, tolerance=0.0)
        assert result.iterations == 3
        assert len(result.error_history) == 3

    def test_converged_stops_early(self, redis_features):
        features, config = redis_features
        result = fine_tune(features, platform_config=config,
                           max_iterations=10, tolerance=0.9)
        assert result.converged
        assert result.iterations == 1

    def test_returns_best_knobs_when_not_converged(self, redis_features):
        features, config = redis_features
        result = fine_tune(features, platform_config=config,
                           max_iterations=3, tolerance=0.0)
        assert isinstance(result.knobs, TuningKnobs)
        # Knobs stay within the clamp range.
        for name in ("imem_scale", "dmem_scale", "big_wset_scale",
                     "transition_scale", "ilp_scale"):
            assert 0.1 <= getattr(result.knobs, name) <= 10.0

    def test_requires_target_counters(self, redis_features):
        features, config = redis_features
        from dataclasses import replace
        stripped = replace(features, target_counters=None)
        with pytest.raises(ConfigurationError):
            fine_tune(stripped, platform_config=config)

    def test_invalid_iterations_rejected(self, redis_features):
        features, config = redis_features
        with pytest.raises(ConfigurationError):
            fine_tune(features, platform_config=config, max_iterations=0)

    def test_mean_error_property(self):
        result = FineTuneResult(knobs=TuningKnobs(), iterations=1,
                                final_errors={"ipc": 0.1, "l1d": 0.3})
        assert result.mean_error == pytest.approx(0.2)
        empty = FineTuneResult(knobs=TuningKnobs(), iterations=0,
                               final_errors={})
        assert empty.mean_error == math.inf


class TestStripRpcs:
    def test_rpcs_removed_other_ops_kept(self):
        handler = Handler("h", (
            SyscallOp(SyscallInvocation("recv", nbytes=10)),
            RpcOp("downstream", 100, 100),
            ComputeOp(BlockSpec(name="b",
                                iform_counts={"ADD_r64_r64": 10.0})),
            SyscallOp(SyscallInvocation("send", nbytes=10)),
        ))
        program = Program(handlers={"h": handler})
        stripped = _strip_rpcs(program)
        ops = stripped.handler("h").ops
        assert len(ops) == 3
        assert not any(isinstance(op, RpcOp) for op in ops)

    def test_rpc_only_handler_kept_as_is(self):
        handler = Handler("h", (RpcOp("downstream", 1, 1),))
        program = Program(handlers={"h": handler})
        stripped = _strip_rpcs(program)
        assert len(stripped.handler("h").ops) == 1
