"""RPC resilience: retries, breakers, shedding, and outcome accounting."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached, social_network_deployment
from repro.faults import (
    FaultPlan,
    FaultWindow,
    LatencySpikeFault,
    NodeCrashFault,
    PacketLossFault,
)
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.loadgen.generator import (
    REQUEST_OUTCOMES,
    LatencyRecorder,
    classify_failure,
)
from repro.runtime import (
    CircuitBreaker,
    ExperimentConfig,
    ResilienceConfig,
    RetryPolicy,
    run_experiment,
)
from repro.util.errors import (
    CircuitOpenError,
    ConfigurationError,
    FaultInjectionError,
    LoadSheddedError,
    RetryExhaustedError,
    RpcTimeoutError,
)
from repro.util.rng import make_rng
from repro.util.spec_hash import stable_digest


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=1e-3, max_backoff_s=1e-4)

    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_attempts=8, base_backoff_s=1e-3,
                             max_backoff_s=4e-3)

        class _Full:
            @staticmethod
            def random():
                return 1.0  # full jitter at its upper bound

        assert policy.backoff_s(1, _Full) == pytest.approx(1e-3)
        assert policy.backoff_s(2, _Full) == pytest.approx(2e-3)
        assert policy.backoff_s(3, _Full) == pytest.approx(4e-3)
        assert policy.backoff_s(7, _Full) == pytest.approx(4e-3)  # capped

    def test_backoff_jitter_deterministic_per_stream(self):
        policy = RetryPolicy()
        first = [policy.backoff_s(n, make_rng(1, "t")) for n in (1, 2, 3)]
        second = [policy.backoff_s(n, make_rng(1, "t")) for n in (1, 2, 3)]
        assert first == second
        assert all(0.0 <= b <= policy.max_backoff_s for b in first)


class _FakeEnv:
    def __init__(self):
        self.now = 0.0


class TestCircuitBreaker:
    def _breaker(self, threshold=3, recovery=1.0):
        return CircuitBreaker(_FakeEnv(), "backend",
                              failure_threshold=threshold,
                              recovery_s=recovery)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker(threshold=3)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_transitions == 1

    def test_success_resets_the_streak(self):
        breaker = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_rejects_until_recovery(self):
        breaker = self._breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejections == 1
        breaker.env.now = 1.0
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half-open"

    def test_half_open_admits_single_probe(self):
        breaker = self._breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        breaker.env.now = 1.0
        assert breaker.allow()
        assert not breaker.allow()  # second caller rejected
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = self._breaker(threshold=5, recovery=1.0)
        for _ in range(5):
            breaker.record_failure()
        breaker.env.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # half-open failure re-opens immediately
        assert breaker.state == "open"
        assert breaker.open_transitions == 2
        assert breaker.opened_at == 1.0


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(rpc_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_failure_threshold=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_recovery_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_queue_depth=0)

    def test_picklable_and_hashable(self):
        import pickle

        config = ResilienceConfig(max_queue_depth=16)
        assert pickle.loads(pickle.dumps(config)) == config
        assert stable_digest(config) == stable_digest(
            ResilienceConfig(max_queue_depth=16))
        assert stable_digest(config) != stable_digest(ResilienceConfig())


class TestOutcomeClassification:
    def test_buckets(self):
        assert classify_failure(RpcTimeoutError("t")) == "timeout"
        assert classify_failure(RetryExhaustedError(
            "r", attempts=3, last_error=RpcTimeoutError("t"))) == "timeout"
        assert classify_failure(RetryExhaustedError(
            "r", attempts=3,
            last_error=FaultInjectionError("f"))) == "error"
        assert classify_failure(LoadSheddedError("s")) == "shed"
        assert classify_failure(CircuitOpenError("c")) == "error"
        assert classify_failure(FaultInjectionError("f")) == "error"
        assert classify_failure(ValueError("v")) == "error"

    def test_recorder_tracks_failures(self):
        recorder = LatencyRecorder()
        recorder.record("get", 1e-3)
        recorder.record_failure("get", "timeout")
        recorder.record_failure("set", "shed")
        assert recorder.failed == 2
        assert recorder.error_rate == pytest.approx(2 / 3)
        assert recorder.outcome_counts() == {
            "ok": 1, "timeout": 1, "shed": 1, "error": 0}
        assert recorder.failures_by_handler == {
            "get": {"timeout": 1}, "set": {"shed": 1}}
        # Failures never pollute the latency distribution.
        assert recorder.samples == [1e-3]

    def test_recorder_rejects_non_failure_outcomes(self):
        recorder = LatencyRecorder()
        with pytest.raises(ConfigurationError):
            recorder.record_failure("get", "ok")
        with pytest.raises(ConfigurationError):
            recorder.record_failure("get", "crashed")

    def test_outcome_vocabulary_is_closed(self):
        assert REQUEST_OUTCOMES == ("ok", "timeout", "shed", "error")


class TestResilientRuns:
    def test_load_shedding_bounds_queues(self):
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            resilience=ResilienceConfig(max_queue_depth=2))
        result = run_experiment(Deployment.single(build_memcached()),
                                LoadSpec.open_loop(300_000), config)
        metrics = result.service("memcached")
        assert metrics.shed_requests > 0
        assert result.outcome_counts()["shed"] == metrics.shed_requests
        assert result.error_rate > 0.0

    def test_tiny_timeout_forces_retries_then_exhaustion(self):
        # 1 us is far below any simulated RPC's service time, so every
        # inter-service call times out, burns its retries, and the
        # request fails as a timeout.
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.004, seed=7,
            resilience=ResilienceConfig(
                rpc_timeout_s=1e-6,
                retry=RetryPolicy(max_attempts=2, base_backoff_s=1e-6,
                                  max_backoff_s=1e-5)))
        result = run_experiment(social_network_deployment(),
                                LoadSpec.open_loop(2_000), config)
        totals = {name: m for name, m in result.services.items()}
        assert sum(m.rpc_timeouts for m in totals.values()) > 0
        assert sum(m.rpc_retries for m in totals.values()) > 0
        assert result.outcome_counts()["timeout"] > 0

    def test_crash_with_resilience_fails_requests(self):
        # Mid-run the node hosting every tier crashes: in-flight and
        # newly admitted requests fail, and the run keeps going to
        # completion instead of dying on the injected error.
        deployment = social_network_deployment()
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            fault_plan=FaultPlan((NodeCrashFault(
                node="node0", at_s=0.002, downtime_s=0.006),)),
            resilience=ResilienceConfig(
                rpc_timeout_s=2e-3,
                retry=RetryPolicy(max_attempts=2),
                breaker_failure_threshold=2,
                breaker_recovery_s=5e-3))
        result = run_experiment(deployment, LoadSpec.open_loop(3_000),
                                config)
        assert result.error_rate > 0.0
        assert sum(m.failed_requests
                   for m in result.services.values()) > 0

    def test_generous_timeout_never_fires(self):
        # Regression: any_of() used to treat a fresh (queued, not yet
        # dispatched) timeout as already won, so every timed RPC raced
        # its deadline and lost instantly — even a one-second budget
        # against sub-millisecond calls. A timeout far above any
        # simulated RPC latency must never fire.
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            resilience=ResilienceConfig(rpc_timeout_s=1.0))
        result = run_experiment(social_network_deployment(),
                                LoadSpec.open_loop(2_000), config)
        assert result.error_rate == 0.0
        assert sum(m.rpc_timeouts for m in result.services.values()) == 0

    def test_resilient_run_remains_deterministic(self):
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.006, seed=11,
            resilience=ResilienceConfig(rpc_timeout_s=1e-3,
                                        max_queue_depth=32))
        deployment = social_network_deployment()
        load = LoadSpec.open_loop(2_000)
        first = run_experiment(deployment, load, config)
        second = run_experiment(deployment, load, config)
        assert stable_digest(
            {n: m.snapshot() for n, m in first.services.items()}
        ) == stable_digest(
            {n: m.snapshot() for n, m in second.services.items()})
        assert first.outcome_counts() == second.outcome_counts()


class TestBreakerRecovery:
    """Half-open -> closed recovery once an injected fault window ends.

    The deployment spreads every downstream tier onto a second node so
    all frontend RPCs cross the NIC — latency spikes and packet-loss
    retransmissions are charged at the wire, so only cross-node calls
    feel them.
    """

    @staticmethod
    def _cross_node_socialnet():
        base = social_network_deployment()
        placement = {name: ("node0" if name == base.entry_service
                            else "node1")
                     for name in base.services}
        return social_network_deployment(placement=placement)

    @staticmethod
    def _config(**overrides):
        # Spike window 2-8 ms out of a 60 ms run: +2 ms on every
        # cross-node send (plus lossy retransmits) against a 0.6 ms RPC
        # timeout, then 52 ms of healthy traffic for half-open probes
        # to close the breakers again.
        settings = dict(
            platform=PLATFORM_A, duration_s=0.06, seed=9,
            fault_plan=FaultPlan((
                LatencySpikeFault(extra_s=2e-3, probability=1.0,
                                  window=FaultWindow(2e-3, 8e-3)),
                PacketLossFault(rate=0.3, retransmit_delay_s=2e-3,
                                window=FaultWindow(2e-3, 8e-3)),
            )),
            resilience=ResilienceConfig(
                rpc_timeout_s=0.6e-3,
                retry=RetryPolicy(max_attempts=1),
                breaker_failure_threshold=1,
                breaker_recovery_s=2e-3))
        settings.update(overrides)
        return ExperimentConfig(**settings)

    def test_breakers_open_during_spike_then_close(self):
        result = run_experiment(self._cross_node_socialnet(),
                                LoadSpec.open_loop(2_000), self._config())
        # The spike really bit: timeouts fired and some requests failed,
        # but the run was not wholesale destroyed.
        assert sum(m.rpc_timeouts for m in result.services.values()) > 0
        assert 0.0 < result.error_rate < 0.5
        tripped = [stats
                   for targets in result.breakers.values()
                   for stats in targets.values()
                   if stats["open_transitions"] > 0]
        assert tripped, "no breaker opened during the fault window"
        # While open, at least one breaker fast-failed callers...
        assert sum(stats["rejections"] for stats in tripped) > 0
        # ...and every tripped breaker recovered through its half-open
        # probe once the window passed: none may end the run open.
        assert all(stats["state"] == "closed" for stats in tripped)

    def test_recovery_is_deterministic(self):
        deployment = self._cross_node_socialnet()
        load = LoadSpec.open_loop(2_000)
        first = run_experiment(deployment, load, self._config())
        second = run_experiment(deployment, load, self._config())
        assert first.breakers == second.breakers
        assert first.outcome_counts() == second.outcome_counts()

    def test_breakers_empty_without_resilience(self):
        config = self._config(resilience=None)
        result = run_experiment(self._cross_node_socialnet(),
                                LoadSpec.open_loop(2_000), config)
        assert result.breakers == {}
