"""RPC resilience: retries, breakers, shedding, and outcome accounting."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached, social_network_deployment
from repro.faults import FaultPlan, NodeCrashFault
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.loadgen.generator import (
    REQUEST_OUTCOMES,
    LatencyRecorder,
    classify_failure,
)
from repro.runtime import (
    CircuitBreaker,
    ExperimentConfig,
    ResilienceConfig,
    RetryPolicy,
    run_experiment,
)
from repro.util.errors import (
    CircuitOpenError,
    ConfigurationError,
    FaultInjectionError,
    LoadSheddedError,
    RetryExhaustedError,
    RpcTimeoutError,
)
from repro.util.rng import make_rng
from repro.util.spec_hash import stable_digest


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=1e-3, max_backoff_s=1e-4)

    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_attempts=8, base_backoff_s=1e-3,
                             max_backoff_s=4e-3)

        class _Full:
            @staticmethod
            def random():
                return 1.0  # full jitter at its upper bound

        assert policy.backoff_s(1, _Full) == pytest.approx(1e-3)
        assert policy.backoff_s(2, _Full) == pytest.approx(2e-3)
        assert policy.backoff_s(3, _Full) == pytest.approx(4e-3)
        assert policy.backoff_s(7, _Full) == pytest.approx(4e-3)  # capped

    def test_backoff_jitter_deterministic_per_stream(self):
        policy = RetryPolicy()
        first = [policy.backoff_s(n, make_rng(1, "t")) for n in (1, 2, 3)]
        second = [policy.backoff_s(n, make_rng(1, "t")) for n in (1, 2, 3)]
        assert first == second
        assert all(0.0 <= b <= policy.max_backoff_s for b in first)


class _FakeEnv:
    def __init__(self):
        self.now = 0.0


class TestCircuitBreaker:
    def _breaker(self, threshold=3, recovery=1.0):
        return CircuitBreaker(_FakeEnv(), "backend",
                              failure_threshold=threshold,
                              recovery_s=recovery)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker(threshold=3)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_transitions == 1

    def test_success_resets_the_streak(self):
        breaker = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_rejects_until_recovery(self):
        breaker = self._breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejections == 1
        breaker.env.now = 1.0
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half-open"

    def test_half_open_admits_single_probe(self):
        breaker = self._breaker(threshold=1, recovery=1.0)
        breaker.record_failure()
        breaker.env.now = 1.0
        assert breaker.allow()
        assert not breaker.allow()  # second caller rejected
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = self._breaker(threshold=5, recovery=1.0)
        for _ in range(5):
            breaker.record_failure()
        breaker.env.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # half-open failure re-opens immediately
        assert breaker.state == "open"
        assert breaker.open_transitions == 2
        assert breaker.opened_at == 1.0


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(rpc_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_failure_threshold=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_recovery_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_queue_depth=0)

    def test_picklable_and_hashable(self):
        import pickle

        config = ResilienceConfig(max_queue_depth=16)
        assert pickle.loads(pickle.dumps(config)) == config
        assert stable_digest(config) == stable_digest(
            ResilienceConfig(max_queue_depth=16))
        assert stable_digest(config) != stable_digest(ResilienceConfig())


class TestOutcomeClassification:
    def test_buckets(self):
        assert classify_failure(RpcTimeoutError("t")) == "timeout"
        assert classify_failure(RetryExhaustedError(
            "r", attempts=3, last_error=RpcTimeoutError("t"))) == "timeout"
        assert classify_failure(RetryExhaustedError(
            "r", attempts=3,
            last_error=FaultInjectionError("f"))) == "error"
        assert classify_failure(LoadSheddedError("s")) == "shed"
        assert classify_failure(CircuitOpenError("c")) == "error"
        assert classify_failure(FaultInjectionError("f")) == "error"
        assert classify_failure(ValueError("v")) == "error"

    def test_recorder_tracks_failures(self):
        recorder = LatencyRecorder()
        recorder.record("get", 1e-3)
        recorder.record_failure("get", "timeout")
        recorder.record_failure("set", "shed")
        assert recorder.failed == 2
        assert recorder.error_rate == pytest.approx(2 / 3)
        assert recorder.outcome_counts() == {
            "ok": 1, "timeout": 1, "shed": 1, "error": 0}
        assert recorder.failures_by_handler == {
            "get": {"timeout": 1}, "set": {"shed": 1}}
        # Failures never pollute the latency distribution.
        assert recorder.samples == [1e-3]

    def test_recorder_rejects_non_failure_outcomes(self):
        recorder = LatencyRecorder()
        with pytest.raises(ConfigurationError):
            recorder.record_failure("get", "ok")
        with pytest.raises(ConfigurationError):
            recorder.record_failure("get", "crashed")

    def test_outcome_vocabulary_is_closed(self):
        assert REQUEST_OUTCOMES == ("ok", "timeout", "shed", "error")


class TestResilientRuns:
    def test_load_shedding_bounds_queues(self):
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            resilience=ResilienceConfig(max_queue_depth=2))
        result = run_experiment(Deployment.single(build_memcached()),
                                LoadSpec.open_loop(300_000), config)
        metrics = result.service("memcached")
        assert metrics.shed_requests > 0
        assert result.outcome_counts()["shed"] == metrics.shed_requests
        assert result.error_rate > 0.0

    def test_tiny_timeout_forces_retries_then_exhaustion(self):
        # 1 us is far below any simulated RPC's service time, so every
        # inter-service call times out, burns its retries, and the
        # request fails as a timeout.
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.004, seed=7,
            resilience=ResilienceConfig(
                rpc_timeout_s=1e-6,
                retry=RetryPolicy(max_attempts=2, base_backoff_s=1e-6,
                                  max_backoff_s=1e-5)))
        result = run_experiment(social_network_deployment(),
                                LoadSpec.open_loop(2_000), config)
        totals = {name: m for name, m in result.services.items()}
        assert sum(m.rpc_timeouts for m in totals.values()) > 0
        assert sum(m.rpc_retries for m in totals.values()) > 0
        assert result.outcome_counts()["timeout"] > 0

    def test_crash_with_resilience_fails_requests(self):
        # Mid-run the node hosting every tier crashes: in-flight and
        # newly admitted requests fail, and the run keeps going to
        # completion instead of dying on the injected error.
        deployment = social_network_deployment()
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            fault_plan=FaultPlan((NodeCrashFault(
                node="node0", at_s=0.002, downtime_s=0.006),)),
            resilience=ResilienceConfig(
                rpc_timeout_s=2e-3,
                retry=RetryPolicy(max_attempts=2),
                breaker_failure_threshold=2,
                breaker_recovery_s=5e-3))
        result = run_experiment(deployment, LoadSpec.open_loop(3_000),
                                config)
        assert result.error_rate > 0.0
        assert sum(m.failed_requests
                   for m in result.services.values()) > 0

    def test_resilient_run_remains_deterministic(self):
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.006, seed=11,
            resilience=ResilienceConfig(rpc_timeout_s=1e-3,
                                        max_queue_depth=32))
        deployment = social_network_deployment()
        load = LoadSpec.open_loop(2_000)
        first = run_experiment(deployment, load, config)
        second = run_experiment(deployment, load, config)
        assert stable_digest(
            {n: m.snapshot() for n, m in first.services.items()}
        ) == stable_digest(
            {n: m.snapshot() for n, m in second.services.items()})
        assert first.outcome_counts() == second.outcome_counts()
