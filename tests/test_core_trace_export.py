"""Tests for trace export (§5's trace-driven simulator path)."""

import pytest

from repro.core import generate_program
from repro.core.trace_export import (
    export_instruction_trace,
    export_memory_trace,
    iter_memory_accesses,
)
from repro.isa.instructions import iform
from repro.util.errors import ConfigurationError

from tests._feature_factory import make_features


@pytest.fixture(scope="module")
def synthetic_program():
    program, _files = generate_program(make_features())
    return program


class TestMemoryTrace:
    def test_iterator_yields_addresses(self, synthetic_program):
        records = list(iter_memory_accesses(synthetic_program, handler="op",
                                            requests=1))
        assert len(records) > 50
        for address, is_write in records[:100]:
            assert address >= 0x10_0000
            assert isinstance(is_write, bool)

    def test_write_fraction_roughly_respected(self, synthetic_program):
        records = list(iter_memory_accesses(synthetic_program, handler="op",
                                            requests=2))
        writes = sum(1 for _, w in records if w)
        # Feature factory sets write_frac=0.25.
        assert 0.1 < writes / len(records) < 0.45

    def test_ramulator_format(self, synthetic_program, tmp_path):
        path = tmp_path / "mem.trace"
        lines = export_memory_trace(synthetic_program, path, handler="op")
        assert lines > 0
        content = path.read_text().splitlines()
        assert len(content) == lines
        for line in content[:50]:
            parts = line.split()
            assert len(parts) in (2, 3)
            assert parts[0].isdigit()
            assert int(parts[1]) >= 0

    def test_deterministic_per_seed(self, synthetic_program, tmp_path):
        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        export_memory_trace(synthetic_program, a, handler="op", seed=9)
        export_memory_trace(synthetic_program, b, handler="op", seed=9)
        assert a.read_text() == b.read_text()

    def test_invalid_requests_rejected(self, synthetic_program):
        with pytest.raises(ConfigurationError):
            list(iter_memory_accesses(synthetic_program, requests=0))


class TestInstructionTrace:
    def test_format_and_validity(self, synthetic_program, tmp_path):
        path = tmp_path / "inst.trace"
        lines = export_instruction_trace(synthetic_program, path,
                                         handler="op")
        assert lines > 100
        for line in path.read_text().splitlines()[:200]:
            pc, name = line.split()
            assert pc.startswith("0x")
            iform(name)  # every emitted iform exists in the catalogue

    def test_budget_respected(self, synthetic_program, tmp_path):
        path = tmp_path / "inst_small.trace"
        lines = export_instruction_trace(synthetic_program, path,
                                         handler="op",
                                         max_instructions=500)
        assert lines <= 500

    def test_mix_tracks_program(self, synthetic_program, tmp_path):
        path = tmp_path / "inst_mix.trace"
        export_instruction_trace(synthetic_program, path, handler="op",
                                 requests=2)
        names = [line.split()[1] for line in path.read_text().splitlines()]
        # ADD_r64_r64 dominates the factory mix.
        add_fraction = names.count("ADD_r64_r64") / len(names)
        assert add_fraction > 0.15
