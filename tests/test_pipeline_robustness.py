"""Pipeline hardening: tier retry, executor degradation, checkpoints."""

import functools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest

from repro.app.service import Deployment, Placement
from repro.app.workloads import build_memcached, build_redis
from repro.core import DittoCloner
from repro.core.pipeline import TierCheckpoint, clone_tier, run_tier_pipeline
from repro.faults import FaultPlan, LatencySpikeFault, PacketLossFault
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment
from repro.runtime import ExperimentConfig, run_experiment
from repro.util.errors import ConfigurationError, TierExecutionError
from repro.util.spec_hash import stable_digest

FAST_BUDGET = ProfilingBudget(
    sampled_requests=8, max_accesses_per_spec=512,
    max_istream_per_block=2048, branch_outcomes_per_site=128,
    max_sites_per_population=8, dep_samples_per_block=48,
    profile_duration_s=0.015,
)
CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)


def _two_tier_deployment():
    memcached, redis = build_memcached(), build_redis()
    return Deployment(
        services={memcached.name: memcached, redis.name: redis},
        placements=[Placement(memcached.name, "node0"),
                    Placement(redis.name, "node1")],
        entry_service=memcached.name,
    )


@pytest.fixture(scope="module")
def tier_tasks():
    deployment = _two_tier_deployment()
    cloner = DittoCloner(fine_tune_tiers=False, budget=FAST_BUDGET, seed=17)
    profile = profile_deployment(deployment, LoadSpec.open_loop(30_000),
                                 CONFIG, budget=FAST_BUDGET, seed=17)
    return [cloner._tier_task(profile, name, CONFIG)
            for name in deployment.services]


# ---------------------------------------------------------------------- #
# module-level tier functions: picklable for pool executors, with
# cross-process state carried through files (pool workers are forks)
# ---------------------------------------------------------------------- #

def _bump(counter_path):
    # Atomic write-then-rename: concurrent bumpers (pool workers, or
    # parent threads after degradation) never observe a torn/truncated
    # counter file.
    count = 0
    if os.path.exists(counter_path):
        with open(counter_path) as handle:
            count = int(handle.read() or 0)
    count += 1
    scratch = f"{counter_path}.{os.getpid()}.tmp"
    with open(scratch, "w") as handle:
        handle.write(str(count))
    os.replace(scratch, counter_path)
    return count


def _note(log_path, service):
    with open(log_path, "a") as handle:
        handle.write(service + "\n")


def _fail_n_then_clone(counter_path, failures, task):
    if _bump(counter_path) <= failures:
        raise RuntimeError("transient tier failure")
    return clone_tier(task)


def _crash_once_then_clone(counter_path, parent_pid, task):
    # Hard worker death breaks the whole process pool — but only ever
    # kill a *worker*: after degradation this same function re-runs in
    # the parent (thread/serial mode), where exiting would take the
    # test session down with it.
    if _bump(counter_path) == 1 and os.getpid() != parent_pid:
        os._exit(23)
    return clone_tier(task)


def _fail_one_service(service, task):
    if task.artifacts.service == service:
        raise RuntimeError(f"{service} keeps failing")
    return clone_tier(task)


def _logged_clone(log_path, task):
    _note(log_path, task.artifacts.service)
    return clone_tier(task)


_FAULTED_CONFIG = ExperimentConfig(
    platform=PLATFORM_A, duration_s=0.008, seed=21,
    fault_plan=FaultPlan((
        PacketLossFault(rate=0.2, retransmit_delay_s=100e-6),
        LatencySpikeFault(extra_s=50e-6, probability=0.4),
    )))


def _faulted_run_digest(_index=0):
    result = run_experiment(Deployment.single(build_memcached()),
                            LoadSpec.open_loop(40_000), _FAULTED_CONFIG)
    return (result.faults.digest(), stable_digest(
        {name: m.snapshot() for name, m in result.services.items()}))


class TestTierRetry:
    def test_serial_retry_recovers(self, tier_tasks, tmp_path):
        flaky = functools.partial(
            _fail_n_then_clone, str(tmp_path / "counter"), 2)
        outcomes, mode = run_tier_pipeline(
            tier_tasks, executor="serial", tier_fn=flaky, tier_retries=2)
        assert mode == "serial"
        assert [o.service for o in outcomes] == [
            task.artifacts.service for task in tier_tasks]

    def test_pool_retry_recovers(self, tier_tasks, tmp_path):
        flaky = functools.partial(
            _fail_n_then_clone, str(tmp_path / "counter"), 1)
        outcomes, mode = run_tier_pipeline(
            tier_tasks, executor="process", max_workers=2,
            tier_fn=flaky, tier_retries=1)
        assert mode == "process"
        assert len(outcomes) == len(tier_tasks)

    def test_exhaustion_names_tier_and_keeps_siblings(self, tier_tasks):
        broken = functools.partial(_fail_one_service, "redis")
        with pytest.raises(TierExecutionError) as excinfo:
            run_tier_pipeline(tier_tasks, executor="serial",
                              tier_fn=broken, tier_retries=1)
        error = excinfo.value
        assert error.tier == "redis"
        assert error.attempts == 2  # first try + one retry
        assert isinstance(error.last_error, RuntimeError)
        # The healthy sibling's outcome survives inside the error.
        assert "memcached" in error.outcomes
        assert error.outcomes["memcached"].spec.name == "memcached"

    def test_zero_retries_fails_fast(self, tier_tasks, tmp_path):
        flaky = functools.partial(
            _fail_n_then_clone, str(tmp_path / "counter"), 1)
        with pytest.raises(TierExecutionError) as excinfo:
            run_tier_pipeline(tier_tasks, executor="serial",
                              tier_fn=flaky, tier_retries=0)
        assert excinfo.value.attempts == 1

    def test_tier_retries_validated(self, tier_tasks):
        with pytest.raises(ConfigurationError):
            run_tier_pipeline(tier_tasks, tier_retries=-1)
        with pytest.raises(ConfigurationError):
            run_tier_pipeline(tier_tasks, tier_retries=True)


class TestExecutorDegradation:
    def test_worker_crash_degrades_and_completes(self, tier_tasks, tmp_path):
        crashing = functools.partial(
            _crash_once_then_clone, str(tmp_path / "counter"), os.getpid())
        outcomes, mode = run_tier_pipeline(
            tier_tasks, executor="process", max_workers=2,
            tier_fn=crashing, tier_retries=1)
        # The killed worker broke the process pool; the survivors were
        # re-run on a degraded executor and the clone still finished.
        assert mode in ("thread", "serial")
        assert sorted(o.service for o in outcomes) == sorted(
            task.artifacts.service for task in tier_tasks)


class TestCheckpointResume:
    def test_outcomes_persist_and_resume(self, tier_tasks, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first, _ = run_tier_pipeline(tier_tasks, executor="serial",
                                     checkpoint_dir=ckpt)
        assert len(os.listdir(ckpt)) == len(tier_tasks)
        log = str(tmp_path / "invocations")
        resumed, _ = run_tier_pipeline(
            tier_tasks, executor="serial",
            tier_fn=functools.partial(_logged_clone, log),
            checkpoint_dir=ckpt)
        assert not os.path.exists(log)  # nothing re-ran
        assert stable_digest([o.spec for o in resumed]) == stable_digest(
            [o.spec for o in first])

    def test_interrupted_run_reruns_only_missing_tiers(
            self, tier_tasks, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        # First run dies on the second tier — like a killed pipeline —
        # but the finished tier's checkpoint has already been written.
        with pytest.raises(TierExecutionError):
            run_tier_pipeline(
                tier_tasks, executor="serial",
                tier_fn=functools.partial(_fail_one_service, "redis"),
                checkpoint_dir=ckpt, tier_retries=0)
        assert len(os.listdir(ckpt)) == 1
        log = str(tmp_path / "invocations")
        outcomes, _ = run_tier_pipeline(
            tier_tasks, executor="serial",
            tier_fn=functools.partial(_logged_clone, log),
            checkpoint_dir=ckpt)
        with open(log) as handle:
            reran = handle.read().split()
        assert reran == ["redis"]  # memcached came from the checkpoint
        assert len(outcomes) == len(tier_tasks)

    def test_changed_task_misses_stale_checkpoint(self, tier_tasks,
                                                  tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_tier_pipeline(tier_tasks, executor="serial",
                          checkpoint_dir=ckpt)
        changed = [replace(task, max_tune_iterations=
                           task.max_tune_iterations + 1)
                   for task in tier_tasks]
        log = str(tmp_path / "invocations")
        run_tier_pipeline(changed, executor="serial",
                          tier_fn=functools.partial(_logged_clone, log),
                          checkpoint_dir=ckpt)
        with open(log) as handle:
            reran = sorted(handle.read().split())
        assert reran == ["memcached", "redis"]  # stale entries ignored

    def test_corrupt_checkpoint_is_a_miss(self, tier_tasks, tmp_path):
        ckpt = TierCheckpoint(str(tmp_path / "ckpt"))
        with open(ckpt.path(tier_tasks[0]), "wb") as handle:
            handle.write(b"not a pickle")
        assert ckpt.load(tier_tasks[0]) is None

    def test_cloner_exposes_robustness_knobs(self):
        cloner = DittoCloner(tier_retries=3, checkpoint_dir="/tmp/x")
        assert cloner.tier_retries == 3
        assert cloner.checkpoint_dir == "/tmp/x"
        with pytest.raises(ConfigurationError):
            DittoCloner(tier_retries=-1)
        with pytest.raises(ConfigurationError):
            DittoCloner(checkpoint_dir=123)


class TestCrossExecutorFaultDeterminism:
    def test_fault_timeline_identical_inline_and_in_worker(self):
        # Satellite of the determinism contract: the same (seed, plan)
        # yields the same fault timeline digest and the same metrics
        # whether the experiment runs in this process or inside a
        # process-pool worker.
        inline = _faulted_run_digest()
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote, remote2 = list(pool.map(_faulted_run_digest, [0, 1]))
        assert inline == remote == remote2

    def test_clone_digest_identical_serial_and_process(self, tier_tasks):
        serial, _ = run_tier_pipeline(tier_tasks, executor="serial")
        pooled, mode = run_tier_pipeline(tier_tasks, executor="process",
                                         max_workers=2)
        assert mode == "process"
        assert stable_digest([o.spec for o in serial]) == stable_digest(
            [o.spec for o in pooled])


class TestCheckpointIntegrity:
    def test_truncated_checkpoint_quarantined_and_rerun(
            self, tier_tasks, tmp_path):
        # Regression for the integrity envelope: a checkpoint cut short
        # mid-file (killed writer, torn disk) must be detected by its
        # digest trailer, moved aside as evidence, and treated as a
        # miss — the damaged tier re-runs, the intact one resumes.
        ckpt_dir = str(tmp_path / "ckpt")
        run_tier_pipeline(tier_tasks, executor="serial",
                          checkpoint_dir=ckpt_dir)
        ckpt = TierCheckpoint(ckpt_dir)
        victim = tier_tasks[0]
        path = ckpt.path(victim)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        assert ckpt.load(victim) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantined")
        log = str(tmp_path / "invocations")
        run_tier_pipeline(tier_tasks, executor="serial",
                          tier_fn=functools.partial(_logged_clone, log),
                          checkpoint_dir=ckpt_dir)
        with open(log) as handle:
            reran = handle.read().split()
        assert reran == [victim.artifacts.service]

    def test_bitflipped_checkpoint_rejected_by_digest(
            self, tier_tasks, tmp_path):
        ckpt = TierCheckpoint(str(tmp_path / "ckpt"))
        victim = tier_tasks[0]
        outcome = clone_tier(victim)
        ckpt.save(victim, outcome)
        path = ckpt.path(victim)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 2] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert ckpt.load(victim) is None
        assert os.path.exists(path + ".quarantined")

    def test_legacy_plain_pickle_is_quiet_miss(self, tier_tasks, tmp_path):
        # Pre-envelope checkpoints (or foreign files) lack the artifact
        # magic: they miss without being quarantined as corruption.
        ckpt = TierCheckpoint(str(tmp_path / "ckpt"))
        path = ckpt.path(tier_tasks[0])
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04legacy pickle bytes")
        assert ckpt.load(tier_tasks[0]) is None
        assert os.path.exists(path)
        assert not os.path.exists(path + ".quarantined")

    def test_checkpoint_write_is_atomic(self, tier_tasks, tmp_path):
        ckpt = TierCheckpoint(str(tmp_path / "ckpt"))
        victim = tier_tasks[0]
        ckpt.save(victim, clone_tier(victim))
        leftovers = [name for name in os.listdir(str(tmp_path / "ckpt"))
                     if ".tmp" in name]
        assert leftovers == []
        assert ckpt.load(victim) is not None
