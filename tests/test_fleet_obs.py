"""Fleet observability: flight recorder, status endpoint, drift, top."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import (
    CloneRequest,
    Deployment,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
)
from repro.fleet import (
    CloneJobSpec,
    FleetClient,
    FleetScheduler,
    JobState,
    JobStore,
)
from repro.fleet.__main__ import main as fleet_main
from repro.fleet.obs import (
    FleetStatusServer,
    FlightRecorder,
    analyze_drift,
    chrome_events,
    load_fidelity_history,
    parse_serve_address,
    read_flight_log,
    render_drift_report,
    render_top,
)
from repro.profiling import ProfilingBudget
from repro.telemetry import Telemetry
from repro.telemetry.chrometrace import chrome_trace
from repro.telemetry.spans import SpanRecord
from repro.util.errors import ConfigurationError

FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)
LOAD = LoadSpec.open_loop(2000)
CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015, seed=5)


def _request(**overrides):
    fields = dict(
        deployment=Deployment.single(build_memcached()),
        load=LOAD, config=CONFIG, seed=17, budget=FAST_BUDGET,
        fine_tune_tiers=True, max_tune_iterations=1,
    )
    fields.update(overrides)
    return CloneRequest(**fields)


def _http_get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_emit_read_round_trip(self, tmp_path):
        path = str(tmp_path / "flight" / "events.jsonl")
        recorder = FlightRecorder(path)
        recorder.emit("job_submitted", job_id="j-0", digest="abc")
        recorder.emit("job_state", job_id="j-0",
                      **{"from": "submitted", "to": "tuning",
                         "reason": "tuning"})
        recorder.close()
        log = read_flight_log(path)
        assert log.skipped == 0
        assert [e.kind for e in log.events] == ["job_submitted",
                                                "job_state"]
        assert log.events[0].data == {"digest": "abc"}
        assert log.events[0].pid == os.getpid()
        assert log.events[0].seq < log.events[1].seq

    def test_corrupt_line_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = FlightRecorder(path)
        recorder.emit("a", job_id="j-0")
        recorder.emit("b", job_id="j-0")
        recorder.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        # flip a payload byte in the first line; signature must catch it
        tampered = lines[0].replace('"j-0"', '"j-1"')
        assert tampered != lines[0]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(tampered + "\n" + lines[1] + "\n")
            handle.write("not json at all\n")
        log = read_flight_log(path)
        assert log.skipped == 2
        assert [e.kind for e in log.events] == ["b"]

    def test_missing_log_reads_empty(self, tmp_path):
        log = read_flight_log(str(tmp_path / "never-written.jsonl"))
        assert log.events == [] and log.skipped == 0

    def test_interleaved_writers_merge_in_order(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        one, two = FlightRecorder(path), FlightRecorder(path)
        one.emit("a", job_id="j-0")
        two.emit("b", job_id="j-0")
        one.emit("c", job_id="j-0")
        one.close(), two.close()
        log = read_flight_log(path)
        assert len(log.events) == 3
        assert log.events == sorted(log.events, key=lambda e: e.order)
        assert log.lifecycle("j-0") == []   # no state events recorded

    def test_chrome_events_state_slices_and_instants(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = FlightRecorder(path)
        recorder.emit("job_submitted", job_id="j-0")
        recorder.emit("job_state", job_id="j-0",
                      **{"from": "submitted", "to": "tuning",
                         "reason": ""})
        recorder.emit("job_state", job_id="j-0",
                      **{"from": "tuning", "to": "published",
                         "reason": ""})
        recorder.close()
        events = chrome_events(read_flight_log(path).events)
        slices = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in slices] == ["submitted", "tuning"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 3
        assert any(e["ph"] == "M" and e["args"]["name"] ==
                   "fleet flight recorder" for e in events)

    def test_chrome_trace_rebases_flight_with_spans(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        recorder = FlightRecorder(path)
        event = recorder.emit("job_submitted", job_id="j-0")
        recorder.close()
        # a span that started 1s before the flight event
        span = SpanRecord(name="profiling", category="pipeline",
                          ts_us=int(event.ts * 1e6) - 1_000_000,
                          dur_us=500.0, pid=123, tid=1,
                          thread_name="MainThread")
        doc = chrome_trace([span], extra_events=chrome_events(
            read_flight_log(path).events))
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert min(e["ts"] for e in timed) == 0      # span is the base
        flight_instant = next(e for e in timed if e["ph"] == "i")
        assert flight_instant["ts"] == pytest.approx(1_000_000, abs=5e3)


class TestStoreFlightWiring:
    def test_off_by_default_and_auto_join(self, tmp_path):
        root = str(tmp_path / "store")
        assert JobStore(root).flight is None
        assert not os.path.isdir(os.path.join(root, "flight"))
        # enabling once flips every later default-constructed handle
        assert JobStore(root, flight=True).flight is not None
        assert JobStore(root).flight is not None
        assert JobStore(root, flight=False).flight is None


# --------------------------------------------------------------------- #
# status endpoint
# --------------------------------------------------------------------- #
class TestParseServeAddress:
    def test_forms(self):
        assert parse_serve_address(None) is None
        assert parse_serve_address(False) is None
        assert parse_serve_address(True) == ("127.0.0.1", 0)
        assert parse_serve_address(9090) == ("127.0.0.1", 9090)
        assert parse_serve_address(":9090") == ("127.0.0.1", 9090)
        assert parse_serve_address("0.0.0.0:80") == ("0.0.0.0", 80)
        assert parse_serve_address("8080") == ("127.0.0.1", 8080)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_serve_address("nonsense:port")
        with pytest.raises(ConfigurationError):
            parse_serve_address(3.14)


class TestStatusServer:
    def test_routes_over_http(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(CloneJobSpec(request=_request()))
        server = FleetStatusServer(store, address=True)
        try:
            status, metrics = _http_get(server.url + "/metrics")
            assert status == 200
            assert "ditto_fleet_jobs_submitted_total 1" in metrics
            status, body = _http_get(server.url + "/jobs")
            jobs = json.loads(body)
            assert [j["job_id"] for j in jobs] == [record.job_id]
            assert jobs[0]["state"] == "submitted"
            status, body = _http_get(server.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["queue_depth"] == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _http_get(server.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_merges_session_registry_without_double_count(self, tmp_path):
        store = JobStore(str(tmp_path))
        session = Telemetry(label="t")
        session.registry.counter("extra_total").inc(3)
        server = FleetStatusServer(
            store, registries=(session.registry, store.registry))
        try:
            store.submit(CloneJobSpec(request=_request()))
            text = server.metrics_text()
            assert "extra_total 3" in text
            # the store registry appears once even though it was passed
            # explicitly AND implied — submit counted 1, not 2
            assert "ditto_fleet_jobs_submitted_total 1" in text
        finally:
            server.close()

    def test_scheduler_lifecycle(self, tmp_path):
        scheduler = FleetScheduler(str(tmp_path), serve_metrics=True)
        assert scheduler.status_server is not None
        url = scheduler.status_server.url
        assert _http_get(url + "/healthz")[0] == 200
        scheduler.close()
        assert scheduler.status_server is None
        scheduler.close()   # idempotent
        # disabled by default
        assert FleetScheduler(str(tmp_path)).status_server is None


# --------------------------------------------------------------------- #
# drift analysis
# --------------------------------------------------------------------- #
def _entry(job_id, error, relative=0.1, absolute=0.0, metric="ipc"):
    return {
        "job_id": job_id, "label": "twotier", "platform": "A",
        "checks": [{
            "metric": metric, "service": "svc",
            "original": 1.0, "clone": 1.0 + error, "error": error,
            "relative_tolerance": relative,
            "absolute_tolerance": absolute,
            "passed": error <= relative,
        }],
    }


class TestDriftAnalysis:
    def test_drifting_when_latest_fraction_past_warn(self):
        report = analyze_drift(
            {"d0": [_entry("j0", 0.02), _entry("j1", 0.09)]})
        flag = report.series[0]
        assert flag.verdict == "DRIFTING"       # 0.09 / 0.1 = 90%
        assert flag.latest_fraction == pytest.approx(0.9)
        assert report.drifting() and report.flagged()

    def test_watch_on_monotonic_widening(self):
        entries = [_entry(f"j{i}", error)
                   for i, error in enumerate((0.04, 0.05, 0.06))]
        report = analyze_drift({"d0": entries})
        flag = report.series[0]
        assert flag.verdict == "WATCH"
        assert flag.widening
        assert flag.jobs == ("j0", "j1", "j2")

    def test_stable_series_is_ok(self):
        entries = [_entry(f"j{i}", 0.02) for i in range(4)]
        report = analyze_drift({"d0": entries})
        assert report.series[0].verdict == "OK"
        assert not report.flagged()

    def test_absolute_floor_forgives_small_deltas(self):
        # relative error is 50% of a tiny value, but the absolute slack
        # covers the delta — tolerance fraction uses the forgiving bound
        entry = {
            "job_id": "j0", "label": "", "platform": "A",
            "checks": [{
                "metric": "error_rate", "service": "",
                "original": 0.002, "clone": 0.003, "error": 0.5,
                "relative_tolerance": 0.0, "absolute_tolerance": 0.02,
                "passed": True,
            }],
        }
        report = analyze_drift({"d0": [entry]})
        assert report.series[0].latest_fraction == pytest.approx(0.05)
        assert report.series[0].verdict == "OK"

    def test_history_loader_skips_torn_lines(self, tmp_path):
        path = tmp_path / "abc123.jsonl"
        good = json.dumps(_entry("j0", 0.01))
        path.write_text(good + "\n" + '{"job_id": "j1", "chec\n',
                        encoding="utf-8")
        histories = load_fidelity_history(str(tmp_path))
        assert list(histories) == ["abc123"]
        assert [e["job_id"] for e in histories["abc123"]] == ["j0"]

    def test_render_mentions_verdicts(self):
        report = analyze_drift(
            {"d0": [_entry("j0", 0.02), _entry("j1", 0.09)]})
        text = render_drift_report(report, store_root="/x")
        assert "DRIFTING" in text
        assert "1 series tracked; 1 flagged (1 drifting)" in text
        empty = render_drift_report(analyze_drift({}))
        assert "no gated fidelity history" in empty


# --------------------------------------------------------------------- #
# end-to-end: process-pool fleet with every observer on
# --------------------------------------------------------------------- #
class TestFleetObservabilityEndToEnd:
    @pytest.fixture(scope="class")
    def observed(self, tmp_path_factory):
        """Two identical gated jobs through a process pool, with the
        flight recorder, telemetry session and status endpoint all on."""
        root = str(tmp_path_factory.mktemp("observed"))
        store = JobStore(root, flight=True)
        client = FleetClient(store)
        first = client.submit(_request(validate=True), name="first")
        second = client.submit(_request(validate=True), name="second")
        session = Telemetry(label="fleet-obs")
        scheduler = FleetScheduler(store, executor="process",
                                   max_workers=2, telemetry=session,
                                   serve_metrics=True)
        try:
            outcomes = scheduler.run_until_idle()
            status, metrics_text = _http_get(
                scheduler.status_server.url + "/metrics")
            _, jobs_body = _http_get(scheduler.status_server.url
                                     + "/jobs")
        finally:
            scheduler.close()
        return (store, client, (first, second), outcomes, session,
                metrics_text, json.loads(jobs_body))

    def test_jobs_published(self, observed):
        _, _, _, outcomes, _, _, _ = observed
        assert sorted(o.state for o in outcomes) \
            == [JobState.PUBLISHED] * 2

    def test_flight_log_written_across_processes(self, observed):
        store, _, (first, second), _, _, _, _ = observed
        log = read_flight_log(store.flight_path)
        assert log.skipped == 0
        assert set(log.job_ids()) == {first.job_id, second.job_id}
        # submission was recorded by this process, execution by pool
        # workers — more than one writer pid appears in the log
        assert len({e.pid for e in log.events}) >= 2
        for job_id in (first.job_id, second.job_id):
            lifecycle = log.lifecycle(job_id)
            assert lifecycle[0] == "submitted"
            assert lifecycle[-1] == "published"
        assert len(log.filter(kind="result_published")) == 2

    def test_histograms_absorbed_across_processes(self, observed):
        # both pool workers observed the same series — the absorb path
        # merged colliding histogram labels instead of dropping them
        _, _, _, _, session, _, _ = observed
        histogram = session.registry.get(
            "ditto_fleet_job_duration_seconds")
        assert histogram is not None
        assert histogram.count(state="published") == 2
        assert histogram.sum(state="published") > 0

    def test_metrics_endpoint_shows_fleet_state(self, observed):
        _, _, _, _, _, metrics_text, jobs = observed
        assert ("ditto_fleet_jobs_submitted_total 2"
                in metrics_text)
        assert ('ditto_fleet_job_duration_seconds_count'
                '{state="published"} 2') in metrics_text
        assert 'ditto_fidelity_error{metric="ipc"' in metrics_text
        assert sorted(j["state"] for j in jobs) == ["published"] * 2

    def test_drift_history_keyed_by_spec_digest(self, observed):
        store, client, (first, second), _, _, _, _ = observed
        assert first.spec_digest == second.spec_digest
        histories = store.fidelity_history()
        assert list(histories) == [first.spec_digest[:32]]
        entries = histories[first.spec_digest[:32]]
        assert sorted(e["job_id"] for e in entries) \
            == sorted([first.job_id, second.job_id])
        report = client.drift_report()
        assert report.series and not report.drifting()
        # identical specs, identical clones: zero drift between jobs
        for flag in report.series:
            assert flag.fractions[0] == flag.fractions[-1]

    def test_top_renders_the_fleet(self, observed):
        store, _, _, _, _, _, _ = observed
        frame = render_top(store, read_flight_log(store.flight_path))
        assert "published=2" in frame
        assert "flight log:" in frame
        assert "job_state=" in frame


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestObservabilityCli:
    def test_run_serve_telemetry_then_inspect(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        run_json = str(tmp_path / "run.json")
        trace_json = str(tmp_path / "trace.json")
        assert fleet_main(["submit", "--store", store, "--workload",
                           "memcached", "--fast", "--validate",
                           "--flight"]) == 0
        job_id = capsys.readouterr().out.strip()

        assert fleet_main(["run", "--store", store, "--executor",
                           "serial", "--telemetry", "--serve",
                           "--save", run_json]) == 0
        err = capsys.readouterr().err
        assert "serving fleet status on http://127.0.0.1:" in err
        assert "telemetry: shared-cache hits=" in err
        assert "telemetry report — fleet" in err
        assert os.path.exists(run_json)

        assert fleet_main(["top", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "ditto fleet top" in out
        assert "published=1" in out

        assert fleet_main(["drift", "--store", store, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "series tracked" in out

        assert fleet_main(["drift", "--store", store, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "ditto-fleet-drift/1"
        assert doc["series"]

        assert fleet_main(["trace", "--store", store, "--out",
                           trace_json, "--run", run_json]) == 0
        trace = json.load(open(trace_json))
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "i", "X"} <= phases

        assert fleet_main(["show", "--store", store, job_id]) == 0
        out = capsys.readouterr().out
        assert "fidelity: PASS" in out
        assert "fidelity gate" in out       # the per-metric table

    def test_trace_without_flight_log_fails_cleanly(self, tmp_path,
                                                    capsys):
        store = str(tmp_path / "store")
        JobStore(store)     # valid store, recorder never enabled
        assert fleet_main(["trace", "--store", store, "--out",
                           str(tmp_path / "t.json")]) == 1
        assert "no flight events" in capsys.readouterr().err

    def test_report_cli_reads_fleet_artifacts(self, tmp_path, capsys):
        from repro.telemetry.report import main as report_main
        store = str(tmp_path / "store")
        assert fleet_main(["submit", "--store", store, "--workload",
                           "memcached", "--fast", "--validate",
                           "--flight"]) == 0
        job_id = capsys.readouterr().out.strip()
        assert fleet_main(["run", "--store", store,
                           "--executor", "serial"]) == 0
        capsys.readouterr()

        assert report_main([store]) == 0
        out = capsys.readouterr().out
        assert f"== job {job_id} (published) ==" in out
        assert "== flight log ==" in out
        assert "fidelity gate" in out

        artifact = os.path.join(store, "results",
                                f"{job_id}.fidelity.json")
        assert report_main([artifact]) == 0
        out = capsys.readouterr().out
        assert f"fleet fidelity artifact — job {job_id}" in out


# --------------------------------------------------------------------- #
# determinism: observability must not move a single output bit
# --------------------------------------------------------------------- #
def test_observability_leaves_digests_unchanged(tmp_path):
    plain_store = JobStore(str(tmp_path / "plain"))
    plain = FleetClient(plain_store)
    plain_record = plain.submit(_request(validate=True))
    FleetScheduler(plain_store, executor="serial").run_until_idle()

    observed_store = JobStore(str(tmp_path / "observed"), flight=True)
    observed = FleetClient(observed_store)
    observed_record = observed.submit(_request(validate=True))
    scheduler = FleetScheduler(observed_store, executor="serial",
                               telemetry=True, serve_metrics=True)
    try:
        scheduler.run_until_idle()
    finally:
        scheduler.close()

    plain_final = plain.get(plain_record.job_id)
    observed_final = observed.get(observed_record.job_id)
    assert plain_final.state is JobState.PUBLISHED
    assert plain_final.result_digest == observed_final.result_digest
    plain_bundle = json.load(
        open(plain_store.bundle_path(plain_record.job_id)))
    observed_bundle = json.load(
        open(observed_store.bundle_path(observed_record.job_id)))
    assert plain_bundle == observed_bundle
