"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, Store
from repro.util.errors import SimulationError


class TestResource:
    def test_serialises_beyond_capacity(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        finish_times = []

        def job():
            grant = cpu.request()
            yield grant
            yield env.timeout(10.0)
            cpu.release()
            finish_times.append(env.now)

        env.process(job())
        env.process(job())
        env.run()
        assert finish_times == [10.0, 20.0]

    def test_parallelism_up_to_capacity(self):
        env = Environment()
        cpu = Resource(env, capacity=2)
        finish_times = []

        def job():
            yield cpu.request()
            yield env.timeout(10.0)
            cpu.release()
            finish_times.append(env.now)

        for _ in range(2):
            env.process(job())
        env.run()
        assert finish_times == [10.0, 10.0]

    def test_wait_time_accounting(self):
        env = Environment()
        cpu = Resource(env, capacity=1)

        def job():
            yield cpu.request()
            yield env.timeout(4.0)
            cpu.release()

        env.process(job())
        env.process(job())
        env.run()
        # Second job waited 4 time units; two grants total.
        assert cpu.total_wait_time == pytest.approx(4.0)
        assert cpu.mean_wait_time == pytest.approx(2.0)

    def test_release_when_idle_raises(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            cpu.release()

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_use_helper(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        done = []

        def job():
            yield env.process(cpu.use(3.0))
            done.append(env.now)

        env.process(job())
        env.process(job())
        env.run()
        assert done == [3.0, 6.0]

    def test_fifo_grant_order(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        order = []

        def job(tag, arrive):
            yield env.timeout(arrive)
            yield cpu.request()
            order.append(tag)
            yield env.timeout(5.0)
            cpu.release()

        env.process(job("first", 0.0))
        env.process(job("second", 1.0))
        env.process(job("third", 2.0))
        env.run()
        assert order == ["first", "second", "third"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = {}

        def consumer():
            got["item"] = yield store.get()

        def producer():
            yield env.timeout(1.0)
            yield store.put("msg")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got["item"] == "msg"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = {}

        def consumer():
            got["item"] = yield store.get()
            got["time"] = env.now

        def producer():
            yield env.timeout(5.0)
            yield store.put(1)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got["time"] == 5.0

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(env.now)
            yield store.put("b")
            times.append(env.now)

        def consumer():
            yield env.timeout(10.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [0.0, 10.0]

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)

        def producer():
            yield store.put("x")
            yield store.put("y")

        env.process(producer())
        env.run()
        assert len(store) == 2
        assert store.items == ["x", "y"]

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)
