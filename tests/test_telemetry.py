"""Telemetry: registry semantics, spans, exports, and pipeline wiring."""

import json
import os

import pytest

from repro.app.workloads import two_tier_deployment
from repro.core import CloneRequest, DittoCloner
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget
from repro.runtime import ExperimentConfig
from repro.telemetry import (
    MetricsRegistry,
    SimTimeline,
    Telemetry,
    current_session,
    span,
)
from repro.telemetry.chrometrace import SIM_PID_BASE, chrome_trace
from repro.telemetry.registry import MAX_SERIES_PER_METRIC
from repro.telemetry.report import main as report_main
from repro.telemetry.spans import _NOOP
from repro.util import ConfigurationError, stable_digest

FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)
TWO_TIER_LOAD = LoadSpec.open_loop(2000)
TWO_TIER_CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015,
                                   seed=5)


def _clone(**kwargs):
    cloner = DittoCloner(budget=FAST_BUDGET, max_tune_iterations=1,
                         seed=17, **kwargs)
    return cloner.clone(CloneRequest(deployment=two_tier_deployment(),
                                     load=TWO_TIER_LOAD,
                                     config=TWO_TIER_CONFIG))


@pytest.fixture(scope="module")
def serial_plain():
    return _clone(executor="serial")


@pytest.fixture(scope="module")
def serial_telemetry():
    return _clone(executor="serial", telemetry=True)


@pytest.fixture(scope="module")
def process_telemetry():
    return _clone(executor="process", max_workers=2, telemetry=True)


class TestRegistry:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "requests", ("service",))
        counter.inc(2, service="a")
        counter.inc(3, service="b")
        assert counter.value(service="a") == 2
        assert counter.total() == 5

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("service",))
        with pytest.raises(ConfigurationError):
            counter.inc(1, wrong_label="x")
        with pytest.raises(ConfigurationError):
            counter.inc(1)

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing")
        with pytest.raises(ConfigurationError):
            registry.counter("thing", label_names=("extra",))

    def test_cardinality_cap(self):
        counter = MetricsRegistry().counter("c_total", "", ("id",))
        for i in range(MAX_SERIES_PER_METRIC):
            counter.inc(1, id=i)
        with pytest.raises(ConfigurationError):
            counter.inc(1, id="one-too-many")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4

    def test_histogram_buckets(self):
        histogram = MetricsRegistry().histogram(
            "lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(56.05)
        # per-bucket (non-cumulative), +Inf last
        assert histogram.bucket_counts() == [1, 2, 1, 1]

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.counter("c_total").inc(2)
        a.gauge("g").set(1)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c_total").inc(3)
        b.gauge("g").set(9)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        # snapshots are JSON-safe
        a.merge(json.loads(json.dumps(b.snapshot())))
        assert a.counter("c_total").value() == 5          # counters add
        assert a.gauge("g").value() == 9                  # gauges overwrite
        assert a.histogram("h", buckets=(1.0,)).count() == 2
        assert a.histogram("h", buckets=(1.0,)).bucket_counts() == [1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge(b.snapshot())

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", ("svc",)).inc(3, svc="a")
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = registry.to_prometheus_text()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{svc="a"} 3' in text
        # cumulative histogram buckets with le labels
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text


class TestSpans:
    def test_noop_without_session(self):
        assert current_session() is None
        assert span("anything") is _NOOP

    def test_records_into_active_session(self):
        with Telemetry() as session:
            with span("outer", category="test"):
                with span("inner", category="test", items=3):
                    pass
        names = [r.name for r in session.spans.records]
        assert names == ["inner", "outer"]     # closed innermost-first
        inner = session.spans.by_name()["inner"][0]
        assert inner.args == {"items": 3}
        assert inner.pid == os.getpid()
        assert inner.dur_us >= 0

    def test_exception_recorded_and_propagated(self):
        with Telemetry() as session:
            with pytest.raises(ValueError, match="boom"):
                with span("failing"):
                    raise ValueError("boom")
        record = session.spans.records[0]
        assert "boom" in record.args["error"]

    def test_set_attaches_args(self):
        with Telemetry() as session:
            with span("stage") as handle:
                handle.set(error_rate=0.25)
        assert session.spans.records[0].args["error_rate"] == 0.25

    def test_session_deactivated_after_exit(self):
        telemetry = Telemetry()
        with telemetry:
            assert current_session() is telemetry
        assert current_session() is None

    def test_reentrant_activation(self):
        telemetry = Telemetry()
        telemetry.activate()
        telemetry.activate()
        telemetry.deactivate()
        assert current_session() is telemetry   # outer scope still open
        telemetry.deactivate()
        assert current_session() is None


class TestChromeTrace:
    def test_round_trip_and_event_shape(self):
        telemetry = Telemetry(label="unit")
        with telemetry:
            with span("stage_a"):
                pass
        run = telemetry.timeline.begin_run("svc (open 10 qps)")
        run.complete("svc", "req", ts=0.001, dur=0.002, queued=0.0)
        run.instant("svc", "drop", ts=0.004)
        doc = json.loads(json.dumps(telemetry.chrome_trace()))
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for event in events:
            assert event["ph"] in {"X", "M", "B", "E", "i"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0
        spans_x = [e for e in events
                   if e["ph"] == "X" and e["pid"] < SIM_PID_BASE]
        assert [e["name"] for e in spans_x] == ["stage_a"]
        sim = [e for e in events if e.get("pid", 0) >= SIM_PID_BASE]
        assert {e["ph"] for e in sim} >= {"X", "i", "M"}
        instant = next(e for e in sim if e["ph"] == "i")
        assert instant["s"] == "t"
        process_names = [e for e in events if e["ph"] == "M"
                         and e["name"] == "process_name"]
        assert len(process_names) == 2      # one wall-clock, one sim run

    def test_sim_runs_get_separate_process_groups(self):
        timeline = SimTimeline()
        timeline.begin_run("first").complete("svc", "a", 0.0, 0.001)
        timeline.begin_run("second").complete("svc", "a", 0.0, 0.001)
        doc = chrome_trace((), timeline)
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {SIM_PID_BASE, SIM_PID_BASE + 1}

    def test_timeline_cap_counts_drops(self):
        timeline = SimTimeline(max_events=3)
        run = timeline.begin_run("capped")
        for i in range(5):
            run.complete("svc", f"e{i}", float(i), 0.1)
        assert len(timeline) == 3
        assert timeline.dropped == 2


class TestWorkerRoundTrip:
    def test_payload_absorb(self):
        worker = Telemetry.for_worker()
        assert worker.timeline is None
        with worker:
            worker.registry.counter("work_total").inc(4)
            with span("tier:w"):
                pass
        parent = Telemetry()
        parent.absorb(worker.payload())
        parent.absorb(None)     # tolerated
        assert parent.registry.counter("work_total").value() == 4
        assert [r.name for r in parent.spans.records] == ["tier:w"]

    def test_absorb_merge_semantics_per_metric_type(self):
        """Counter adds, gauge last-write-wins, histogram bucket-merges —
        including label collisions where parent and workers all wrote
        the same series (the fleet's process-pool shape)."""
        parent = Telemetry()
        parent.registry.counter("jobs_total", "", ("state",)).inc(
            2, state="done")
        parent.registry.gauge("queue_depth").set(7)
        parent.registry.histogram(
            "job_seconds", buckets=(1.0, 2.0)).observe(0.5)

        payloads = []
        for value in (1.5, 5.0):
            worker = Telemetry.for_worker()
            with worker:
                counter = worker.registry.counter("jobs_total", "",
                                                  ("state",))
                counter.inc(1, state="done")    # collides with parent
                counter.inc(1, state="failed")  # new series
                worker.registry.gauge("queue_depth").set(value)
                worker.registry.histogram(
                    "job_seconds", buckets=(1.0, 2.0)).observe(value)
            payloads.append(worker.payload())
        for payload in payloads:
            parent.absorb(payload)

        counter = parent.registry.get("jobs_total")
        assert counter.value(state="done") == 4     # 2 + 1 + 1
        assert counter.value(state="failed") == 2
        # gauges: the last absorbed payload's value sticks
        assert parent.registry.get("queue_depth").value() == 5.0
        histogram = parent.registry.get("job_seconds")
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(0.5 + 1.5 + 5.0)
        # one observation per bucket: 0.5 ≤ 1.0 < 1.5 ≤ 2.0 < 5.0
        assert histogram.bucket_counts() == [1, 1, 1]

    def test_absorb_rejects_histogram_bucket_mismatch(self):
        worker = Telemetry.for_worker()
        with worker:
            worker.registry.histogram("h", buckets=(1.0,)).observe(0.5)
        parent = Telemetry()
        parent.registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            parent.absorb(worker.payload())


class TestReportCli:
    def test_cli_renders_saved_run(self, tmp_path, capsys):
        telemetry = Telemetry(label="cli test")
        with telemetry:
            telemetry.registry.counter(
                "ditto_expcache_hits_total", "", ("cache",)).inc(3, cache="t")
            telemetry.registry.counter(
                "ditto_expcache_misses_total", "", ("cache",)).inc(1,
                                                                   cache="t")
            with span("profiling"):
                pass
        path = tmp_path / "run.json"
        telemetry.save(str(path))
        assert report_main([str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "telemetry report — cli test" in out
        assert "profiling" in out
        assert "== experiment cache ==" in out
        assert "75.0%" in out       # 3 hits / 4 lookups
        assert "# TYPE ditto_expcache_hits_total counter" in out


class TestPipelineTelemetry:
    """Acceptance: the clone pipeline records into one merged session."""

    def test_output_identical_with_telemetry(self, serial_plain,
                                             serial_telemetry):
        assert (stable_digest(serial_plain.synthetic)
                == stable_digest(serial_telemetry.synthetic))

    def test_output_identical_across_executors(self, serial_plain,
                                               process_telemetry):
        assert (stable_digest(serial_plain.synthetic)
                == stable_digest(process_telemetry.synthetic))

    def test_serial_clone_records_stages(self, serial_telemetry):
        telemetry = serial_telemetry.report.telemetry
        names = set(telemetry.spans.by_name())
        assert {"profiling", "tier_pipeline", "tier:frontend",
                "tier:memcached", "feature_extraction", "generation",
                "run_experiment"} <= names

    def test_cache_stats_are_registry_backed(self, serial_telemetry):
        report = serial_telemetry.report
        registry = report.telemetry.registry
        misses = registry.get("ditto_expcache_misses_total")
        assert misses is not None
        assert report.cache_stats.misses == int(misses.total())

    def test_process_clone_merges_worker_spans(self, process_telemetry):
        telemetry = process_telemetry.report.telemetry
        doc = telemetry.chrome_trace()
        span_pids = {e["pid"] for e in doc["traceEvents"]
                     if e.get("ph") == "X" and e["pid"] < SIM_PID_BASE}
        assert os.getpid() in span_pids
        assert any(pid != os.getpid() for pid in span_pids), \
            "no worker-process spans in the merged trace"
        tier_names = {e["name"] for e in doc["traceEvents"]
                      if e.get("ph") == "X"
                      and e["name"].startswith("tier:")}
        assert tier_names == {"tier:frontend", "tier:memcached"}

    def test_profiling_records_sim_timeline(self, process_telemetry):
        telemetry = process_telemetry.report.telemetry
        tracks = telemetry.timeline.tracks()
        assert tracks, "no simulated-time runs recorded"
        all_tracks = {t for names in tracks.values() for t in names}
        assert {"frontend", "memcached"} <= all_tracks

    def test_report_fields_recorded_as_metrics(self, process_telemetry):
        report = process_telemetry.report
        registry = report.telemetry.registry
        clones = registry.get("ditto_clones_total")
        assert clones.value(executor="process") == 1
        tier_seconds = registry.get("ditto_pipeline_tier_seconds")
        for tier, seconds in report.tier_seconds.items():
            assert tier_seconds.value(tier=tier) == pytest.approx(seconds)

    def test_telemetry_disabled_records_nothing(self, serial_plain):
        assert serial_plain.report.telemetry is None
