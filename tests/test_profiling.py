"""Tests for the profiling toolchain: collector + feature extractors."""

import numpy as np
import pytest

from repro.app.service import Deployment
from repro.app.skeleton import ServerNetworkModel
from repro.app.workloads import build_memcached, build_mongodb, build_redis
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import (
    ProfilingBudget,
    profile_branches,
    profile_dependencies,
    profile_deployment,
    profile_instruction_mix,
    profile_network_model,
    profile_syscalls,
    profile_thread_model,
    profile_working_sets,
)
from repro.profiling.wset import (
    invert_data_hits,
    invert_instruction_hits,
    profile_working_set_regions,
    regularity_ratio,
    reuse_distances,
    shared_ratio,
)
from repro.runtime import ExperimentConfig
from repro.util.errors import ProfilingError


@pytest.fixture(scope="module")
def memcached_profile():
    deployment = Deployment.single(build_memcached())
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)
    return profile_deployment(deployment, LoadSpec.open_loop(100000), config)


@pytest.fixture(scope="module")
def memcached_artifacts(memcached_profile):
    return memcached_profile.artifacts("memcached")


class TestCollector:
    def test_requests_observed(self, memcached_artifacts):
        assert memcached_artifacts.requests_observed >= 8

    def test_counters_attached(self, memcached_artifacts):
        assert memcached_artifacts.counters is not None
        assert memcached_artifacts.counters.ipc > 0

    def test_handler_mix_observed(self, memcached_artifacts):
        assert set(memcached_artifacts.observed_handler_mix) <= {"get", "set"}
        assert "get" in memcached_artifacts.observed_handler_mix

    def test_unknown_service_rejected(self, memcached_profile):
        with pytest.raises(ProfilingError):
            memcached_profile.artifacts("nope")

    def test_region_traces_collected(self, memcached_artifacts):
        assert memcached_artifacts.data_regions
        assert memcached_artifacts.instr_regions
        for region in memcached_artifacts.data_regions:
            assert region.total_weight > 0
            assert region.line_sample_factor >= 1.0


class TestReuseDistances:
    def test_repeated_line_distance_zero(self):
        addresses = np.array([0, 0, 0], dtype=np.int64)
        distances = reuse_distances(addresses)
        assert list(distances) == [-1, 0, 0]

    def test_cyclic_sequence(self):
        # Two lines alternating: each reuse skips one distinct line.
        addresses = np.array([0, 64, 0, 64], dtype=np.int64)
        distances = reuse_distances(addresses)
        assert list(distances) == [-1, -1, 1, 1]

    def test_sequential_sweep_distance_is_footprint(self):
        lines = 32
        addresses = np.tile(np.arange(lines) * 64, 3).astype(np.int64)
        distances = reuse_distances(addresses)
        revisits = distances[lines:]
        assert (revisits == lines - 1).all()

    def test_matches_explicit_lru_simulation(self):
        # Mattson stack distances must agree with the LRU simulator.
        from repro.hw.cache import CacheConfig, SetAssociativeCache
        rng = np.random.default_rng(0)
        addresses = (rng.integers(0, 64, size=800) * 64).astype(np.int64)
        distances = reuse_distances(addresses)
        for size_lines in (8, 16, 32):
            # Fully-associative LRU of size_lines lines.
            cache = SetAssociativeCache(
                CacheConfig("fa", size_lines * 64, size_lines, 1))
            hits_sim = sum(cache.access(int(a)) for a in addresses)
            hits_mattson = int(((distances >= 0)
                                & (distances < size_lines)).sum())
            assert hits_sim == hits_mattson


class TestWorkingSetInversion:
    def test_eq1_sequential_loop_lands_in_its_bin(self):
        # A loop over 16KB must invert to ~all accesses at the 16KB bin.
        lines = 16 * 1024 // 64
        addresses = np.tile(np.arange(lines) * 64, 6).astype(np.int64)
        profile = profile_working_sets(addresses, max_size=1 << 20)
        inverted = invert_data_hits(profile)
        top_bin = max(inverted, key=inverted.get)
        assert top_bin == 16 * 1024

    def test_eq1_conservation(self):
        rng = np.random.default_rng(1)
        addresses = (rng.integers(0, 512, size=3000) * 64).astype(np.int64)
        profile = profile_working_sets(addresses, max_size=1 << 22)
        inverted = invert_data_hits(profile)
        assert sum(inverted.values()) == pytest.approx(profile.hits[-1])

    def test_eq2_line_grain_multiplier(self):
        lines = 64
        addresses = np.tile(np.arange(lines) * 64, 4).astype(np.int64)
        profile = profile_working_sets(addresses, max_size=1 << 16)
        per_line = invert_instruction_hits(profile, line_grain_hits=True)
        direct = invert_instruction_hits(profile, line_grain_hits=False)
        # The 16x factor applies to every non-smallest bin.
        for size in per_line:
            if size > 64 and size in direct:
                assert per_line[size] == pytest.approx(16 * direct[size])

    def test_monotone_hits(self, memcached_artifacts):
        profile = profile_working_set_regions(memcached_artifacts.data_regions)
        assert all(a <= b + 1e-9 for a, b in zip(profile.hits,
                                                 profile.hits[1:]))

    def test_memcached_store_visible_in_big_bins(self, memcached_artifacts):
        profile = profile_working_set_regions(memcached_artifacts.data_regions)
        inverted = invert_data_hits(profile)
        big = sum(v for k, v in inverted.items() if k >= 1 << 20)
        assert big > 0   # the ~41MB value store shows up

    def test_regularity_detects_sequences(self):
        seq = (np.arange(100) * 64).astype(np.int64)
        rng = np.random.default_rng(2)
        rand = (rng.integers(0, 10000, size=100) * 64).astype(np.int64)
        assert regularity_ratio(seq) > 0.9
        assert regularity_ratio(rand) < 0.3

    def test_shared_ratio(self):
        a = (np.arange(10) * 64).astype(np.int64)
        b = (np.arange(5) * 64).astype(np.int64)
        assert shared_ratio(a, b) == pytest.approx(0.5)


class TestInstructionMix(object):
    def test_mix_sums_to_one(self, memcached_artifacts):
        profile = profile_instruction_mix(memcached_artifacts)
        assert sum(profile.mix.normalized().values()) == pytest.approx(1.0)

    def test_instructions_per_request_close_to_model(self,
                                                     memcached_artifacts):
        profile = profile_instruction_mix(memcached_artifacts)
        # memcached GET ~8.4k user instructions, SET ~9.2k.
        assert 7000 < profile.instructions_per_request < 10000

    def test_branch_fraction_sane(self, memcached_artifacts):
        profile = profile_instruction_mix(memcached_artifacts)
        assert 0.03 < profile.branch_fraction() < 0.3

    def test_clusters_nonempty(self, memcached_artifacts):
        profile = profile_instruction_mix(memcached_artifacts)
        assert profile.clusters
        clustered = {n for cluster in profile.clusters for n in cluster}
        assert clustered == set(
            str(k) for k in profile.mix.counts
        )


class TestBranchProfile:
    def test_distribution_weighted(self, memcached_artifacts):
        profile = profile_branches(memcached_artifacts)
        assert profile.rate_distribution.total > 0
        assert 0.5 < profile.mean_taken_rate <= 1.0

    def test_bins_on_grid(self, memcached_artifacts):
        profile = profile_branches(memcached_artifacts)
        for (m, n, _direction) in profile.rate_distribution.counts:
            assert 1 <= m <= 10 and 1 <= n <= 10

    def test_rates_for_bin_roundtrip(self):
        from repro.profiling.branches import BranchProfile
        taken, transition = BranchProfile.rates_for_bin((5, 4, True))
        assert taken == pytest.approx(1 - 2**-5)
        assert transition == pytest.approx(2**-4)


class TestSyscallAndNetModel:
    def test_templates_per_operation(self, memcached_artifacts):
        profile = profile_syscalls(memcached_artifacts)
        template = profile.template("get")
        names = [entry.name for entry in template]
        assert "recv" in names and "sendmsg" in names
        # recv comes before sendmsg in the reconstructed order.
        assert names.index("recv") < names.index("sendmsg")

    def test_epoll_detected(self, memcached_artifacts):
        profile = profile_network_model(memcached_artifacts)
        assert profile.server_model is ServerNetworkModel.IO_MULTIPLEXING

    def test_blocking_detected_for_mongodb(self):
        deployment = Deployment.single(build_mongodb())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=5, page_cache_bytes=4 * 1024**3)
        profile = profile_deployment(deployment, LoadSpec.closed_loop(4),
                                     config)
        net = profile_network_model(profile.artifacts("mongodb"))
        assert net.server_model is ServerNetworkModel.BLOCKING

    def test_payload_sizes_observed(self, memcached_artifacts):
        profile = profile_network_model(memcached_artifacts)
        assert profile.tx_bytes.mean > 1000   # 4KB values dominate


class TestThreadModel:
    def test_memcached_worker_pool_recovered(self, memcached_artifacts):
        profile = profile_thread_model(memcached_artifacts)
        workers = profile.worker_classes()
        assert workers
        fixed = [cls for cls in workers if not cls.scales_with_connections]
        assert any(cls.count == 4 for cls in fixed)

    def test_mongodb_scaling_workers_recovered(self):
        deployment = Deployment.single(build_mongodb())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=5, page_cache_bytes=4 * 1024**3)
        profile = profile_deployment(deployment, LoadSpec.closed_loop(16),
                                     config)
        threads = profile_thread_model(profile.artifacts("mongodb"))
        assert any(cls.scales_with_connections
                   for cls in threads.worker_classes())

    def test_roles_cover_acceptor_and_background(self, memcached_artifacts):
        profile = profile_thread_model(memcached_artifacts)
        roles = {cls.role for cls in profile.classes}
        assert "acceptor" in roles
        assert "background" in roles


class TestDependencies:
    def test_bins_on_grid(self, memcached_artifacts):
        profile = profile_dependencies(memcached_artifacts)
        from repro.hw.ir import DEP_DISTANCE_BINS
        for edge in profile.raw:
            assert edge in DEP_DISTANCE_BINS

    def test_chase_fraction_in_range(self, memcached_artifacts):
        profile = profile_dependencies(memcached_artifacts)
        assert 0.0 <= profile.pointer_chase_frac <= 1.0
        # memcached's lookup block chases ~25% of the time, diluted by
        # the other blocks.
        assert profile.pointer_chase_frac > 0.02
