"""Unit tests for branch outcome generation and prediction models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.branch import (
    BranchPredictorModel,
    GsharePredictor,
    generate_branch_outcomes,
)
from repro.hw.ir import BranchSpec
from repro.util.errors import ConfigurationError


class TestGenerateBranchOutcomes:
    def test_taken_rate_respected(self):
        rng = np.random.default_rng(0)
        outcomes = generate_branch_outcomes(0.8, 0.3, 20000, rng)
        assert outcomes.mean() == pytest.approx(0.8, abs=0.03)

    def test_transition_rate_respected(self):
        rng = np.random.default_rng(1)
        outcomes = generate_branch_outcomes(0.5, 0.25, 20000, rng)
        transitions = np.mean(outcomes[1:] != outcomes[:-1])
        assert transitions == pytest.approx(0.25, abs=0.03)

    def test_always_taken(self):
        rng = np.random.default_rng(2)
        outcomes = generate_branch_outcomes(1.0, 0.0, 1000, rng)
        assert outcomes.mean() > 0.99

    def test_transition_bounded_by_mix(self):
        # taken 0.9 cannot transition more often than 0.2 on average.
        rng = np.random.default_rng(3)
        outcomes = generate_branch_outcomes(0.9, 0.9, 20000, rng)
        transitions = np.mean(outcomes[1:] != outcomes[:-1])
        assert transitions <= 0.25

    def test_invalid_inputs_raise(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            generate_branch_outcomes(1.2, 0.5, 10, rng)
        with pytest.raises(ConfigurationError):
            generate_branch_outcomes(0.5, 0.5, 0, rng)

    @given(p=st.floats(0.0, 1.0), t=st.floats(0.05, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_statistics_roughly_match(self, p, t):
        # t ~ 0 chains are absorbing (a never-transitioning branch keeps
        # its initial direction), so the stationary mean only emerges for
        # mixing chains.
        rng = np.random.default_rng(42)
        outcomes = generate_branch_outcomes(p, t, 8000, rng)
        assert outcomes.mean() == pytest.approx(p, abs=0.12)


class TestGsharePredictor:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(history_bits=8)
        for _ in range(200):
            predictor.predict_and_update(pc=100, taken=True)
        assert predictor.misprediction_rate < 0.05

    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(history_bits=8)
        for i in range(2000):
            predictor.predict_and_update(pc=100, taken=bool(i % 2))
        assert predictor.misprediction_rate < 0.1

    def test_random_pattern_near_half(self):
        rng = np.random.default_rng(0)
        predictor = GsharePredictor(history_bits=8)
        for taken in rng.random(4000) < 0.5:
            predictor.predict_and_update(pc=100, taken=bool(taken))
        assert 0.35 < predictor.misprediction_rate < 0.6

    def test_idle_rate_zero(self):
        assert GsharePredictor(8).misprediction_rate == 0.0

    def test_invalid_bits_raise(self):
        with pytest.raises(ConfigurationError):
            GsharePredictor(0)


class TestBranchPredictorModel:
    def test_biased_branch_predicts_well(self):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=0.99, transition_rate=0.02)
        assert model.rate_for(spec) < 0.05

    def test_random_branch_predicts_poorly(self):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=0.5, transition_rate=0.5)
        assert model.rate_for(spec) > 0.25

    def test_aliasing_increases_mispredictions(self):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=0.7, transition_rate=0.2)
        clean = model.rate_for(spec, alias_pressure=0.0)
        aliased = model.rate_for(spec, alias_pressure=1.0)
        assert aliased > clean

    def test_rate_memoised(self):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=0.6, transition_rate=0.3)
        assert model.rate_for(spec) == model.rate_for(spec)

    def test_invalid_pressure_raises(self):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=0.6, transition_rate=0.3)
        with pytest.raises(ConfigurationError):
            model.rate_for(spec, alias_pressure=1.5)

    @given(
        taken=st.floats(0.0, 1.0),
        trans=st.floats(0.0, 1.0),
        pressure=st.floats(0.0, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_rate_in_unit_interval(self, taken, trans, pressure):
        model = BranchPredictorModel(history_bits=16)
        spec = BranchSpec(executions=1, taken_rate=taken, transition_rate=trans)
        assert 0.0 <= model.rate_for(spec, alias_pressure=pressure) <= 1.0
