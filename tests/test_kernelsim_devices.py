"""Unit tests for filesystem, network, scheduler and node devices."""

import pytest

from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C
from repro.kernelsim import (
    ContextSwitchModel,
    CpuDevice,
    FileSystem,
    NetworkFabric,
    NicDevice,
    Node,
    PageCache,
)
from repro.kernelsim.filesystem import FileSpec
from repro.kernelsim.netstack import Message
from repro.sim import Environment
from repro.util.errors import ConfigurationError


class TestPageCache:
    def test_cold_read_misses_everything(self):
        cache = PageCache(capacity_bytes=1e9)
        file = FileSpec("db", 1e8)
        assert cache.read(file, 4096) == 4096

    def test_fully_resident_file_hits(self):
        cache = PageCache(capacity_bytes=1e9)
        file = FileSpec("db", 1e6)
        cache.write(file, 1e6)  # populate fully
        assert cache.read(file, 4096) == 0.0

    def test_partial_residency_partial_miss(self):
        cache = PageCache(capacity_bytes=1e9)
        file = FileSpec("db", 1e6)
        cache.write(file, 5e5)  # half resident
        assert cache.read(file, 1000) == pytest.approx(500.0)

    def test_capacity_bounds_residency(self):
        cache = PageCache(capacity_bytes=1e6)
        file = FileSpec("db", 1e8)
        cache.write(file, 5e7)
        assert cache.used_bytes <= 1e6 + 1e-6

    def test_eviction_is_proportional(self):
        cache = PageCache(capacity_bytes=1000)
        f1, f2 = FileSpec("a", 1e6), FileSpec("b", 1e6)
        cache.write(f1, 600)
        cache.write(f2, 600)
        assert cache.used_bytes == pytest.approx(1000)
        assert cache.resident_fraction(f1) > 0
        assert cache.resident_fraction(f2) > 0

    def test_zero_capacity_never_hits(self):
        cache = PageCache(capacity_bytes=0)
        file = FileSpec("db", 1e6)
        cache.write(file, 1e6)
        assert cache.read(file, 100) == 100

    def test_counters(self):
        cache = PageCache(capacity_bytes=1e9)
        file = FileSpec("db", 1e6)
        cache.write(file, 1e6)
        cache.read(file, 500)
        assert cache.hit_bytes == 500
        assert cache.miss_bytes == 0


class TestFileSystem:
    def test_create_and_read(self):
        fs = FileSystem(PageCache(1e9))
        fs.create("data.db", 1e6)
        assert fs.read("data.db", 100) == 100  # cold

    def test_create_idempotent(self):
        fs = FileSystem(PageCache(1e9))
        fs.create("x", 100)
        fs.create("x", 100)

    def test_size_conflict_rejected(self):
        fs = FileSystem(PageCache(1e9))
        fs.create("x", 100)
        with pytest.raises(ConfigurationError):
            fs.create("x", 200)

    def test_missing_file_rejected(self):
        fs = FileSystem(PageCache(1e9))
        with pytest.raises(ConfigurationError):
            fs.read("nope", 1)


class TestNicAndFabric:
    def test_transmit_time_matches_bandwidth(self):
        env = Environment()
        nic = NicDevice(env, PLATFORM_B.network)  # 1 GbE = 125 MB/s
        done = {}

        def proc():
            yield env.process(nic.transmit(125_000_000))
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == pytest.approx(1.0, rel=0.01)
        assert nic.tx_bytes == 125_000_000

    def test_bandwidth_share_slows_transmit(self):
        env = Environment()
        nic = NicDevice(env, PLATFORM_B.network, bandwidth_share=0.5)
        done = {}

        def proc():
            yield env.process(nic.transmit(125_000_000))
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == pytest.approx(2.0, rel=0.01)

    def test_fabric_cross_node_latency(self):
        env = Environment()
        fabric = NetworkFabric(env)
        fabric.attach("n1", NicDevice(env, PLATFORM_A.network, name="n1"))
        fabric.attach("n2", NicDevice(env, PLATFORM_A.network, name="n2"))
        done = {}

        def proc():
            yield env.process(fabric.deliver(Message("n1", "n2", 1250)))
            done["t"] = env.now

        env.process(proc())
        env.run()
        # 1250B at 1.25GB/s = 1us, plus 30us base latency.
        assert done["t"] == pytest.approx(31e-6, rel=0.05)
        assert fabric.nic("n2").rx_bytes == 1250

    def test_loopback_is_instant_but_counted(self):
        env = Environment()
        fabric = NetworkFabric(env)
        fabric.attach("n1", NicDevice(env, PLATFORM_A.network))
        done = {}

        def proc():
            yield env.process(fabric.deliver(Message("n1", "n1", 5000)))
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == 0.0
        assert fabric.nic("n1").tx_bytes == 5000
        assert fabric.nic("n1").rx_bytes == 5000

    def test_duplicate_attach_rejected(self):
        env = Environment()
        fabric = NetworkFabric(env)
        fabric.attach("n1", NicDevice(env, PLATFORM_A.network))
        with pytest.raises(ConfigurationError):
            fabric.attach("n1", NicDevice(env, PLATFORM_A.network))

    def test_unknown_node_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            NetworkFabric(env).nic("ghost")


class TestCpuDevice:
    def test_execute_holds_core_for_cycles(self):
        env = Environment()
        cpu = CpuDevice(env, cores=1, frequency_hz=1e9)
        done = {}

        def proc():
            yield env.process(cpu.execute(cycles=2e9))
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == pytest.approx(2.0)
        assert cpu.busy_seconds == pytest.approx(2.0)

    def test_queueing_beyond_cores(self):
        env = Environment()
        cpu = CpuDevice(env, cores=1, frequency_hz=1e9)
        finish = []

        def proc():
            yield env.process(cpu.execute(cycles=1e9))
            finish.append(env.now)

        env.process(proc())
        env.process(proc())
        env.run()
        assert finish == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_context_switch_adds_cycles(self):
        env = Environment()
        cpu = CpuDevice(env, cores=1, frequency_hz=2.1e9)
        switch = ContextSwitchModel(PLATFORM_A.context())
        done = {}

        def proc():
            yield env.process(cpu.execute(cycles=0, switch=switch))
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] > 0
        assert cpu.context_switches == 1

    def test_utilisation(self):
        env = Environment()
        cpu = CpuDevice(env, cores=2, frequency_hz=1e9)

        def proc():
            yield env.process(cpu.execute(cycles=1e9))

        env.process(proc())
        env.run()
        assert cpu.utilisation(elapsed_seconds=1.0) == pytest.approx(0.5)

    def test_invalid_construction(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            CpuDevice(env, cores=0, frequency_hz=1e9)
        with pytest.raises(ConfigurationError):
            CpuDevice(env, cores=1, frequency_hz=0)


class TestNode:
    def test_defaults_from_platform(self):
        env = Environment()
        node = Node(env, PLATFORM_A)
        assert node.cores == PLATFORM_A.total_cores
        assert node.frequency_ghz == PLATFORM_A.base_frequency_ghz

    def test_core_and_frequency_overrides(self):
        env = Environment()
        node = Node(env, PLATFORM_A, cores=8, frequency_ghz=1.5)
        assert node.cores == 8
        assert node.seconds_for_cycles(1.5e9) == pytest.approx(1.0)

    def test_core_overcommit_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            Node(env, PLATFORM_C, cores=1000)

    def test_disk_io_and_counters(self):
        env = Environment()
        node = Node(env, PLATFORM_A)
        done = {}

        def proc():
            yield env.process(node.disk.io(1_000_000))
            done["t"] = env.now

        env.process(proc())
        env.run()
        # SSD: 90us latency + 1MB/520MBps ~ 2.01ms
        assert done["t"] == pytest.approx(90e-6 + 1e6 / 520e6, rel=0.01)
        assert node.disk.read_bytes == 1_000_000

    def test_hdd_slower_than_ssd(self):
        env = Environment()
        ssd_node = Node(env, PLATFORM_A, name="nA")
        hdd_node = Node(env, PLATFORM_B, name="nB")
        times = {}

        def proc(node, tag):
            start = env.now
            yield env.process(node.disk.io(4096))
            times[tag] = env.now - start

        env.process(proc(ssd_node, "ssd"))
        env.process(proc(hdd_node, "hdd"))
        env.run()
        assert times["hdd"] > 10 * times["ssd"]
