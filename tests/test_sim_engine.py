"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, Interrupt
from repro.util.errors import SimulationError


class TestTimeouts:
    def test_clock_advances_to_timeout(self):
        env = Environment()
        done = {}

        def proc():
            yield env.timeout(5.0)
            done["at"] = env.now

        env.process(proc())
        env.run()
        assert done["at"] == 5.0

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3, "c"))
        env.process(proc(1, "a"))
        env.process(proc(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_stops_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(100.0)

        env.process(proc())
        env.run(until=10.0)
        assert env.now == 10.0

    def test_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("x", "y", "z"):
            env.process(proc(tag))
        env.run()
        assert order == ["x", "y", "z"]


class TestEvents:
    def test_event_value_delivered(self):
        env = Environment()
        evt = env.event()
        got = {}

        def waiter():
            got["value"] = yield evt

        def trigger():
            yield env.timeout(1.0)
            evt.succeed("payload")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got["value"] == "payload"

    def test_failed_event_raises_in_waiter(self):
        env = Environment()
        evt = env.event()
        caught = {}

        def waiter():
            try:
                yield evt
            except ValueError as exc:
                caught["exc"] = exc

        def trigger():
            yield env.timeout(1.0)
            evt.fail(ValueError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert str(caught["exc"]) == "boom"

    def test_double_trigger_raises(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_yield_already_triggered_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed(42)
        got = {}

        def waiter():
            got["value"] = yield evt

        env.process(waiter())
        env.run()
        assert got["value"] == 42


class TestProcesses:
    def test_process_return_value_via_join(self):
        env = Environment()
        got = {}

        def child():
            yield env.timeout(2.0)
            return "done"

        def parent():
            result = yield env.process(child())
            got["result"] = result
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["result"] == "done"
        assert got["time"] == 2.0

    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("slept")
            except Interrupt as intr:
                log.append(f"interrupted:{intr.cause}")

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("wakeup")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == ["interrupted:wakeup"]

    def test_uncaught_interrupt_terminates_quietly(self):
        env = Environment()

        def sleeper():
            yield env.timeout(100.0)

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert not target.is_alive

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_process(self):
        env = Environment()

        def worker():
            yield env.timeout(7.0)
            return "w"

        proc = env.process(worker())
        value = env.run(until=proc)
        assert value == "w"
        assert env.now == 7.0


class TestCombinators:
    def test_all_of_collects_values_in_order(self):
        env = Environment()
        got = {}

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(3, "a")), env.process(child(1, "b"))]
            got["values"] = yield env.all_of(procs)
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["values"] == ["a", "b"]
        assert got["time"] == 3.0

    def test_any_of_returns_first(self):
        env = Environment()
        got = {}

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(5, "slow")), env.process(child(1, "fast"))]
            got["value"] = yield env.any_of(procs)
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["value"] == "fast"
        assert got["time"] == 1.0

    def test_any_of_timeout_race_waits_for_first_dispatch(self):
        # Regression: fresh timeouts are born triggered (they fire at
        # dispatch), and any_of used to hand them the race instantly —
        # a response racing its deadline always "timed out" at t=0.
        # The race must resolve at the earliest dispatch instead.
        env = Environment()
        got = {}

        def responder():
            yield env.timeout(1.0)
            return "response"

        def caller():
            response = env.process(responder())
            deadline = env.timeout(5.0, value="deadline")
            got["value"] = yield env.any_of([response, deadline])
            got["time"] = env.now
            got["responded"] = response.triggered

        env.process(caller())
        env.run()
        assert got["value"] == "response"
        assert got["time"] == 1.0
        assert got["responded"] is True

    def test_any_of_timeout_race_lost_by_slow_event(self):
        # And the deadline must still win when the response really is
        # late — the fix may not simply ignore pending timeouts.
        env = Environment()
        got = {}

        def responder():
            yield env.timeout(9.0)
            return "response"

        def caller():
            response = env.process(responder())
            deadline = env.timeout(2.0, value="deadline")
            got["value"] = yield env.any_of([response, deadline])
            got["time"] = env.now
            got["responded"] = response.triggered

        env.process(caller())
        env.run()
        assert got["value"] == "deadline"
        assert got["time"] == 2.0
        assert got["responded"] is False

    def test_all_of_empty_succeeds_immediately(self):
        env = Environment()
        got = {}

        def parent():
            got["values"] = yield env.all_of([])

        env.process(parent())
        env.run()
        assert got["values"] == []


class TestInterruptRaces:
    def test_interrupt_cancels_pending_fast_resume(self):
        """An interrupt racing a triggered-event resume is delivered once.

        The waiter yields an already-triggered event (queuing a
        fast-resume for the same timestamp) and is interrupted before
        that resume fires: it must see exactly one Interrupt and never
        the stale resume (which would double-step the generator).
        """
        env = Environment()
        log = []
        evt = env.event()
        evt.succeed("ready")

        def waiter():
            yield env.timeout(1.0)
            try:
                value = yield evt
                log.append(("value", value))
            except Interrupt as interrupt:
                log.append(("interrupt", interrupt.cause))
            yield env.timeout(1.0)
            log.append(("done", env.now))

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("bang")

        target = env.process(waiter())
        env.process(interrupter(target))
        env.run()
        assert log == [("interrupt", "bang"), ("done", 2.0)]

    def test_interrupt_before_start_still_runs_body_to_first_yield(self):
        env = Environment()
        log = []

        def body():
            log.append("started")
            try:
                yield env.timeout(10.0)
            except Interrupt:
                log.append("interrupted")

        process = env.process(body())
        process.interrupt()
        env.run()
        assert log == ["started", "interrupted"]


class TestCombinatorDeregistration:
    def test_any_of_losers_drop_callbacks(self):
        env = Environment()
        winner = env.timeout(1.0)
        loser = env.event()   # never triggers
        env.any_of([winner, loser])
        assert len(loser.callbacks) == 1
        env.run()
        assert loser.callbacks == []

    def test_all_of_failure_drops_remaining_callbacks(self):
        env = Environment()
        pending = env.event()  # never triggers

        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        combo = env.all_of([env.process(failing()), pending])
        combo.callbacks.append(lambda event: None)  # swallow the failure
        env.run()
        assert not combo.ok
        assert pending.callbacks == []


class TestDrainedQueueDiagnostics:
    def test_error_names_event_type_and_time(self):
        env = Environment()
        env.process((env.timeout(2.5) for _ in range(1)))
        never = env.event()
        with pytest.raises(SimulationError,
                           match=r"drained at t=2\.5 .*Event"):
            env.run(until=never)

    def test_error_includes_process_name(self):
        env = Environment()

        def stalled():
            yield env.event()

        process = env.process(stalled(), name="stalled-worker")
        with pytest.raises(SimulationError, match=r"Process 'stalled-worker'"):
            env.run(until=process)


class TestTimeoutPooling:
    def test_pool_recycles_and_preserves_values(self):
        env = Environment()
        seen = []

        def proc():
            for index in range(200):
                seen.append((yield env.timeout(0.5, value=index)))

        env.process(proc())
        env.run()
        assert seen == list(range(200))
        assert env._timeout_pool  # recycling actually kicked in

    def test_held_timeout_is_never_recycled(self):
        env = Environment()
        held = []

        def holder():
            timeout = env.timeout(1.0, value="keep")
            held.append(timeout)
            yield timeout

        def churner():
            for _ in range(100):
                yield env.timeout(0.25)

        env.process(holder())
        env.process(churner())
        env.run()
        assert held[0].value == "keep"
        assert all(pooled is not held[0] for pooled in env._timeout_pool)


class TestWatchdogBudgets:
    def test_max_events_trips_on_infinite_loop(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def spinner():
            while True:
                yield env.timeout(1.0)

        env.process(spinner(), name="spinner")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(max_events=50)
        assert excinfo.value.budget == "max_events"
        assert excinfo.value.events >= 50

    def test_deadline_trips_past_horizon(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def slow():
            yield env.timeout(100.0)

        env.process(slow(), name="slow")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(deadline=10.0)
        assert excinfo.value.budget == "deadline"
        assert env.now <= 10.0

    def test_livelock_detector_names_stuck_process(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def stuck():
            while True:
                yield env.timeout(0.0)

        env.process(stuck(), name="stuck-worker")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(max_stalled_events=25)
        assert excinfo.value.budget == "livelock"
        assert "stuck-worker" in str(excinfo.value)

    def test_budgets_disabled_is_bit_identical(self):
        def workload(env, order):
            def proc(delay, tag):
                yield env.timeout(delay)
                order.append((tag, env.now))
            for i, tag in enumerate("abcde"):
                env.process(proc(0.5 * (i + 1), tag))

        plain_env = Environment()
        plain = []
        workload(plain_env, plain)
        plain_env.run()

        guarded_env = Environment()
        guarded = []
        workload(guarded_env, guarded)
        guarded_env.run(max_events=10_000, deadline=1_000.0,
                        max_stalled_events=10_000)
        assert plain == guarded
        assert plain_env.now == guarded_env.now

    def test_budget_applies_to_until_event(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def spinner():
            while True:
                yield env.timeout(1.0)

        def finisher():
            yield env.timeout(1e9)

        env.process(spinner(), name="spinner")
        proc = env.process(finisher(), name="finisher")
        with pytest.raises(SimBudgetExceededError):
            env.run(until=proc, max_events=20)


class TestUntilEventStopsAtTrigger:
    def test_run_until_process_ignores_later_events(self):
        # Regression: a dead far-future entry left in the queue (an
        # any_of loser, a deregistered timeout) must not keep the
        # until=event loop running past the awaited event's dispatch.
        env = Environment()
        done = {}

        def loser():
            # A timeout that outlives the awaited process by a lot.
            yield env.timeout(1000.0)
            done["loser"] = env.now

        def winner():
            yield env.timeout(1.0)
            done["winner"] = env.now

        env.process(loser(), name="loser")
        proc = env.process(winner(), name="winner")
        env.run(until=proc)
        assert done["winner"] == 1.0
        assert "loser" not in done
        assert env.now == 1.0

    def test_any_of_losers_cannot_mask_completion(self):
        # An any_of race leaves the losing process (and its far-future
        # timeout) alive in the queue; awaiting the racing process must
        # still return at the winner's time, not the loser's.
        env = Environment()

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def racer():
            slow = env.process(child(500.0, "slow"), name="slow-child")
            quick = env.process(child(2.0, "quick"), name="quick-child")
            result = yield env.any_of([quick, slow])
            assert result == "quick"
            return env.now

        proc = env.process(racer(), name="racer")
        value = env.run(until=proc)
        assert value == 2.0
        assert env.now == 2.0
        assert env._queue  # the loser is still pending, not drained

    def test_until_event_with_livelock_behind_it_raises(self):
        # A watchdog must catch a livelock that starves the awaited
        # event instead of silently spinning forever.
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def stuck():
            while True:
                yield env.timeout(0.0)

        def never():
            yield env.timeout(1e12)

        env.process(stuck(), name="stuck")
        proc = env.process(never(), name="never")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(until=proc, max_stalled_events=30)
        assert excinfo.value.budget == "livelock"


class TestCalendarHeapEquivalence:
    """Property test: the calendar queue dispatches in exactly the
    (time, insertion counter) order of a reference single-heap
    scheduler, across randomized mixed near/far workloads that also
    schedule new entries from inside callbacks."""

    class _RefHeap:
        """Reference scheduler: one heapq of (when, seq, fn) tuples."""

        def __init__(self):
            import heapq

            self._heapq = heapq
            self._heap = []
            self._seq = 0
            self.now = 0.0

        def call_after(self, delay, fn):
            self._heapq.heappush(
                self._heap, (self.now + delay, self._seq, fn))
            self._seq += 1

        def run(self):
            while self._heap:
                when, _, fn = self._heapq.heappop(self._heap)
                self.now = when
                fn()

    @staticmethod
    def _drive(scheduler, rng, order):
        """Seed a workload whose callbacks chain further entries.

        Delays mix zero (same-tick), tiny near-future, ties, and far
        horizon values; every decision draws from ``rng`` so both
        schedulers see the identical insertion sequence.
        """
        delays = [0.0, 0.0, 1e-9, 1e-9, 3e-7, 0.5, 0.5, 1e3]
        counter = [0]

        def spawn(depth):
            label = counter[0]
            counter[0] += 1

            def fire():
                order.append((label, scheduler.now))
                if depth > 0:
                    for _ in range(rng.randrange(3)):
                        scheduler.call_after(rng.choice(delays),
                                             spawn(depth - 1))

            return fire

        for _ in range(40):
            scheduler.call_after(rng.choice(delays), spawn(3))

    @pytest.mark.parametrize("seed", range(12))
    def test_dispatch_order_matches_reference(self, seed):
        import random

        ref_order, cal_order = [], []
        ref = self._RefHeap()
        self._drive(ref, random.Random(seed), ref_order)
        ref.run()
        env = Environment()
        self._drive(env, random.Random(seed), cal_order)
        env.run()
        assert cal_order == ref_order

    @pytest.mark.parametrize("seed", range(4))
    def test_timeouts_and_calls_interleave_like_reference(self, seed):
        """Same property with Timeout entries mixed among _Call entries
        (timeouts traverse the pool/recycling machinery)."""
        import random

        def drive_env(env, rng, order):
            delays = [0.0, 1e-9, 1e-9, 2e-4, 7.0]
            counter = [0]

            def spawn(depth):
                label = counter[0]
                counter[0] += 1

                def fire(_event=None):
                    order.append((label, env.now))
                    if depth > 0:
                        for _ in range(rng.randrange(3)):
                            delay = rng.choice(delays)
                            if rng.random() < 0.5:
                                timeout = env.timeout(delay)
                                timeout.callbacks.append(spawn(depth - 1))
                            else:
                                env.call_after(delay, spawn(depth - 1))

                return fire

            for _ in range(30):
                timeout = env.timeout(rng.choice(delays))
                timeout.callbacks.append(spawn(3))

        def drive_ref(ref, rng, order):
            delays = [0.0, 1e-9, 1e-9, 2e-4, 7.0]
            counter = [0]

            def spawn(depth):
                label = counter[0]
                counter[0] += 1

                def fire(_event=None):
                    order.append((label, ref.now))
                    if depth > 0:
                        for _ in range(rng.randrange(3)):
                            delay = rng.choice(delays)
                            rng.random()  # mirror the path coin-flip
                            ref.call_after(delay, spawn(depth - 1))

                return fire

            for _ in range(30):
                ref.call_after(rng.choice(delays), spawn(3))

        import random as _random

        ref_order, cal_order = [], []
        ref = self._RefHeap()
        drive_ref(ref, _random.Random(seed), ref_order)
        ref.run()
        env = Environment()
        drive_env(env, _random.Random(seed), cal_order)
        env.run()
        assert cal_order == ref_order


class TestTimeoutMany:
    def test_matches_loop_of_single_timeouts(self):
        delays = [0.0, 2.0, 1.0, 1.0, 0.0, 3e-9, 1.0, 0.5, 0.5]

        def collect(schedule):
            env = Environment()
            order = []
            timeouts = schedule(env)
            for index, timeout in enumerate(timeouts):
                timeout.callbacks.append(
                    lambda _evt, i=index: order.append((i, env.now)))
            env.run()
            return order

        batched = collect(lambda env: env.timeout_many(delays, value="v"))
        looped = collect(
            lambda env: [env.timeout(d, value="v") for d in delays])
        assert batched == looped

    def test_returns_timeouts_in_input_order_with_values(self):
        env = Environment()
        timeouts = env.timeout_many([3.0, 1.0, 2.0], value=9)
        assert [t.delay for t in timeouts] == [3.0, 1.0, 2.0]
        assert all(t.value == 9 for t in timeouts)

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout_many([1.0, -0.5])

    def test_recycles_from_pool(self):
        env = Environment()

        def driver():
            for _ in range(5):
                yield env.timeout_many([1e-6] * 64)[-1]

        env.process(driver())
        env.run()
        # steady-state trains were served from recycled instances
        assert env._pool_served == 0  # reset by the post-drain trim
        env.timeout_many([0.0] * 8)
        assert env._pool_served == 8


class TestTimeoutPoolTrim:
    def test_pool_shrinks_after_burst(self):
        from repro.sim.engine import _TIMEOUT_POOL_KEEP

        env = Environment()

        def burst():
            yield env.timeout_many([1e-6] * 2048)[-1]

        env.process(burst())
        env.run()
        # the drain trimmed the burst-sized freelist back down
        assert len(env._timeout_pool) <= max(_TIMEOUT_POOL_KEEP, 2048)
        env.trim_timeout_pool()
        env.trim_timeout_pool()
        assert len(env._timeout_pool) <= _TIMEOUT_POOL_KEEP

    def test_trim_publishes_gauge_when_session_active(self):
        from repro.telemetry import Telemetry

        env = Environment()

        def burst():
            yield env.timeout_many([1e-6] * 256)[-1]

        env.process(burst())
        with Telemetry() as session:
            env.run()
            size = env.trim_timeout_pool()
            gauge = session.registry.gauge("ditto_engine_timeout_pool_size")
            assert gauge.value() == float(size)

    def test_trim_without_session_is_silent(self):
        env = Environment()
        env.timeout(1.0)
        env.run()
        assert env.trim_timeout_pool() >= 0


class TestDispatchedEventsCounter:
    def test_counts_plain_run(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        # 1 bootstrap resume + 10 timeouts + the process completion event
        assert env.dispatched_events == 12

    def test_counts_horizon_and_guarded_runs_identically(self):
        def build():
            env = Environment()

            def proc():
                for _ in range(10):
                    yield env.timeout(1.0)

            env.process(proc())
            return env

        fast = build()
        fast.run(until=5.0)
        guarded = build()
        guarded.run(until=5.0, max_events=10_000)
        assert fast.dispatched_events == guarded.dispatched_events > 0

    def test_counts_step_and_until_event(self):
        env = Environment()
        timeout = env.timeout(1.0)
        env.step()
        assert env.dispatched_events == 1
        waited = env.timeout(2.0)
        env.run(until=waited)
        assert env.dispatched_events == 2
        assert timeout.triggered


class TestWheelPathRegressions:
    """Interrupt / any_of behaviour across the near/far bucket boundary
    (zero-delay churn in the live bucket racing far-future heap times)."""

    def test_interrupt_far_sleeper_amid_same_tick_churn(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(1e6)
            except Interrupt as interrupt:
                log.append(("interrupted", env.now, interrupt.cause))

        def churn_then_interrupt(target):
            for _ in range(50):
                yield env.timeout(0.0)
            target.interrupt("done-churning")

        target = env.process(sleeper())
        env.process(churn_then_interrupt(target))
        env.run()
        assert log == [("interrupted", 0.0, "done-churning")]

    def test_any_of_zero_delay_beats_far_timeout(self):
        env = Environment()
        result = {}

        def proc():
            near = env.timeout(0.0, value="near")
            far = env.timeout(1e9, value="far")
            first = yield env.any_of([near, far])
            result["value"] = first
            result["now"] = env.now

        def pacer():
            yield env.timeout(1.0)

        env.process(proc())
        race = env.process(pacer())
        env.run(until=race)
        # the far loser must not have dragged the clock to 1e9
        assert result["value"] == "near"
        assert result["now"] == 0.0
        assert env.now == 1.0
