"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, Interrupt
from repro.util.errors import SimulationError


class TestTimeouts:
    def test_clock_advances_to_timeout(self):
        env = Environment()
        done = {}

        def proc():
            yield env.timeout(5.0)
            done["at"] = env.now

        env.process(proc())
        env.run()
        assert done["at"] == 5.0

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3, "c"))
        env.process(proc(1, "a"))
        env.process(proc(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_stops_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(100.0)

        env.process(proc())
        env.run(until=10.0)
        assert env.now == 10.0

    def test_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("x", "y", "z"):
            env.process(proc(tag))
        env.run()
        assert order == ["x", "y", "z"]


class TestEvents:
    def test_event_value_delivered(self):
        env = Environment()
        evt = env.event()
        got = {}

        def waiter():
            got["value"] = yield evt

        def trigger():
            yield env.timeout(1.0)
            evt.succeed("payload")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got["value"] == "payload"

    def test_failed_event_raises_in_waiter(self):
        env = Environment()
        evt = env.event()
        caught = {}

        def waiter():
            try:
                yield evt
            except ValueError as exc:
                caught["exc"] = exc

        def trigger():
            yield env.timeout(1.0)
            evt.fail(ValueError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert str(caught["exc"]) == "boom"

    def test_double_trigger_raises(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_yield_already_triggered_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed(42)
        got = {}

        def waiter():
            got["value"] = yield evt

        env.process(waiter())
        env.run()
        assert got["value"] == 42


class TestProcesses:
    def test_process_return_value_via_join(self):
        env = Environment()
        got = {}

        def child():
            yield env.timeout(2.0)
            return "done"

        def parent():
            result = yield env.process(child())
            got["result"] = result
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["result"] == "done"
        assert got["time"] == 2.0

    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("slept")
            except Interrupt as intr:
                log.append(f"interrupted:{intr.cause}")

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("wakeup")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == ["interrupted:wakeup"]

    def test_uncaught_interrupt_terminates_quietly(self):
        env = Environment()

        def sleeper():
            yield env.timeout(100.0)

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert not target.is_alive

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_process(self):
        env = Environment()

        def worker():
            yield env.timeout(7.0)
            return "w"

        proc = env.process(worker())
        value = env.run(until=proc)
        assert value == "w"
        assert env.now == 7.0


class TestCombinators:
    def test_all_of_collects_values_in_order(self):
        env = Environment()
        got = {}

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(3, "a")), env.process(child(1, "b"))]
            got["values"] = yield env.all_of(procs)
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["values"] == ["a", "b"]
        assert got["time"] == 3.0

    def test_any_of_returns_first(self):
        env = Environment()
        got = {}

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(5, "slow")), env.process(child(1, "fast"))]
            got["value"] = yield env.any_of(procs)
            got["time"] = env.now

        env.process(parent())
        env.run()
        assert got["value"] == "fast"
        assert got["time"] == 1.0

    def test_any_of_timeout_race_waits_for_first_dispatch(self):
        # Regression: fresh timeouts are born triggered (they fire at
        # dispatch), and any_of used to hand them the race instantly —
        # a response racing its deadline always "timed out" at t=0.
        # The race must resolve at the earliest dispatch instead.
        env = Environment()
        got = {}

        def responder():
            yield env.timeout(1.0)
            return "response"

        def caller():
            response = env.process(responder())
            deadline = env.timeout(5.0, value="deadline")
            got["value"] = yield env.any_of([response, deadline])
            got["time"] = env.now
            got["responded"] = response.triggered

        env.process(caller())
        env.run()
        assert got["value"] == "response"
        assert got["time"] == 1.0
        assert got["responded"] is True

    def test_any_of_timeout_race_lost_by_slow_event(self):
        # And the deadline must still win when the response really is
        # late — the fix may not simply ignore pending timeouts.
        env = Environment()
        got = {}

        def responder():
            yield env.timeout(9.0)
            return "response"

        def caller():
            response = env.process(responder())
            deadline = env.timeout(2.0, value="deadline")
            got["value"] = yield env.any_of([response, deadline])
            got["time"] = env.now
            got["responded"] = response.triggered

        env.process(caller())
        env.run()
        assert got["value"] == "deadline"
        assert got["time"] == 2.0
        assert got["responded"] is False

    def test_all_of_empty_succeeds_immediately(self):
        env = Environment()
        got = {}

        def parent():
            got["values"] = yield env.all_of([])

        env.process(parent())
        env.run()
        assert got["values"] == []


class TestInterruptRaces:
    def test_interrupt_cancels_pending_fast_resume(self):
        """An interrupt racing a triggered-event resume is delivered once.

        The waiter yields an already-triggered event (queuing a
        fast-resume for the same timestamp) and is interrupted before
        that resume fires: it must see exactly one Interrupt and never
        the stale resume (which would double-step the generator).
        """
        env = Environment()
        log = []
        evt = env.event()
        evt.succeed("ready")

        def waiter():
            yield env.timeout(1.0)
            try:
                value = yield evt
                log.append(("value", value))
            except Interrupt as interrupt:
                log.append(("interrupt", interrupt.cause))
            yield env.timeout(1.0)
            log.append(("done", env.now))

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("bang")

        target = env.process(waiter())
        env.process(interrupter(target))
        env.run()
        assert log == [("interrupt", "bang"), ("done", 2.0)]

    def test_interrupt_before_start_still_runs_body_to_first_yield(self):
        env = Environment()
        log = []

        def body():
            log.append("started")
            try:
                yield env.timeout(10.0)
            except Interrupt:
                log.append("interrupted")

        process = env.process(body())
        process.interrupt()
        env.run()
        assert log == ["started", "interrupted"]


class TestCombinatorDeregistration:
    def test_any_of_losers_drop_callbacks(self):
        env = Environment()
        winner = env.timeout(1.0)
        loser = env.event()   # never triggers
        env.any_of([winner, loser])
        assert len(loser.callbacks) == 1
        env.run()
        assert loser.callbacks == []

    def test_all_of_failure_drops_remaining_callbacks(self):
        env = Environment()
        pending = env.event()  # never triggers

        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        combo = env.all_of([env.process(failing()), pending])
        combo.callbacks.append(lambda event: None)  # swallow the failure
        env.run()
        assert not combo.ok
        assert pending.callbacks == []


class TestDrainedQueueDiagnostics:
    def test_error_names_event_type_and_time(self):
        env = Environment()
        env.process((env.timeout(2.5) for _ in range(1)))
        never = env.event()
        with pytest.raises(SimulationError,
                           match=r"drained at t=2\.5 .*Event"):
            env.run(until=never)

    def test_error_includes_process_name(self):
        env = Environment()

        def stalled():
            yield env.event()

        process = env.process(stalled(), name="stalled-worker")
        with pytest.raises(SimulationError, match=r"Process 'stalled-worker'"):
            env.run(until=process)


class TestTimeoutPooling:
    def test_pool_recycles_and_preserves_values(self):
        env = Environment()
        seen = []

        def proc():
            for index in range(200):
                seen.append((yield env.timeout(0.5, value=index)))

        env.process(proc())
        env.run()
        assert seen == list(range(200))
        assert env._timeout_pool  # recycling actually kicked in

    def test_held_timeout_is_never_recycled(self):
        env = Environment()
        held = []

        def holder():
            timeout = env.timeout(1.0, value="keep")
            held.append(timeout)
            yield timeout

        def churner():
            for _ in range(100):
                yield env.timeout(0.25)

        env.process(holder())
        env.process(churner())
        env.run()
        assert held[0].value == "keep"
        assert all(pooled is not held[0] for pooled in env._timeout_pool)


class TestWatchdogBudgets:
    def test_max_events_trips_on_infinite_loop(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def spinner():
            while True:
                yield env.timeout(1.0)

        env.process(spinner(), name="spinner")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(max_events=50)
        assert excinfo.value.budget == "max_events"
        assert excinfo.value.events >= 50

    def test_deadline_trips_past_horizon(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def slow():
            yield env.timeout(100.0)

        env.process(slow(), name="slow")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(deadline=10.0)
        assert excinfo.value.budget == "deadline"
        assert env.now <= 10.0

    def test_livelock_detector_names_stuck_process(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def stuck():
            while True:
                yield env.timeout(0.0)

        env.process(stuck(), name="stuck-worker")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(max_stalled_events=25)
        assert excinfo.value.budget == "livelock"
        assert "stuck-worker" in str(excinfo.value)

    def test_budgets_disabled_is_bit_identical(self):
        def workload(env, order):
            def proc(delay, tag):
                yield env.timeout(delay)
                order.append((tag, env.now))
            for i, tag in enumerate("abcde"):
                env.process(proc(0.5 * (i + 1), tag))

        plain_env = Environment()
        plain = []
        workload(plain_env, plain)
        plain_env.run()

        guarded_env = Environment()
        guarded = []
        workload(guarded_env, guarded)
        guarded_env.run(max_events=10_000, deadline=1_000.0,
                        max_stalled_events=10_000)
        assert plain == guarded
        assert plain_env.now == guarded_env.now

    def test_budget_applies_to_until_event(self):
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def spinner():
            while True:
                yield env.timeout(1.0)

        def finisher():
            yield env.timeout(1e9)

        env.process(spinner(), name="spinner")
        proc = env.process(finisher(), name="finisher")
        with pytest.raises(SimBudgetExceededError):
            env.run(until=proc, max_events=20)


class TestUntilEventStopsAtTrigger:
    def test_run_until_process_ignores_later_events(self):
        # Regression: a dead far-future entry left in the queue (an
        # any_of loser, a deregistered timeout) must not keep the
        # until=event loop running past the awaited event's dispatch.
        env = Environment()
        done = {}

        def loser():
            # A timeout that outlives the awaited process by a lot.
            yield env.timeout(1000.0)
            done["loser"] = env.now

        def winner():
            yield env.timeout(1.0)
            done["winner"] = env.now

        env.process(loser(), name="loser")
        proc = env.process(winner(), name="winner")
        env.run(until=proc)
        assert done["winner"] == 1.0
        assert "loser" not in done
        assert env.now == 1.0

    def test_any_of_losers_cannot_mask_completion(self):
        # An any_of race leaves the losing process (and its far-future
        # timeout) alive in the queue; awaiting the racing process must
        # still return at the winner's time, not the loser's.
        env = Environment()

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def racer():
            slow = env.process(child(500.0, "slow"), name="slow-child")
            quick = env.process(child(2.0, "quick"), name="quick-child")
            result = yield env.any_of([quick, slow])
            assert result == "quick"
            return env.now

        proc = env.process(racer(), name="racer")
        value = env.run(until=proc)
        assert value == 2.0
        assert env.now == 2.0
        assert env._queue  # the loser is still pending, not drained

    def test_until_event_with_livelock_behind_it_raises(self):
        # A watchdog must catch a livelock that starves the awaited
        # event instead of silently spinning forever.
        from repro.util.errors import SimBudgetExceededError

        env = Environment()

        def stuck():
            while True:
                yield env.timeout(0.0)

        def never():
            yield env.timeout(1e12)

        env.process(stuck(), name="stuck")
        proc = env.process(never(), name="never")
        with pytest.raises(SimBudgetExceededError) as excinfo:
            env.run(until=proc, max_stalled_events=30)
        assert excinfo.value.budget == "livelock"
