"""Tests for cross-environment clone migration (``repro.migrate``).

The contract under test (DESIGN.md "Clone migration"): a saved clone
bundle either migrates to the destination through preflight → warm
re-tune → destination gate and publishes a stamped ``ditto-migration/1``
artifact, or is refused with a typed ``MigrationError`` naming the
blocking objects — never a silently degraded clone. Impossible
destinations must refuse at preflight with *zero* tuning work.
"""

import json

import pytest

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
)
from repro.core.bundle import (
    deployment_from_bundle,
    load_bundle,
    read_bundle_document,
    save_bundle,
)
from repro.hw.platform import PLATFORM_B, PLATFORM_C
from repro.migrate import (
    MIGRATION_TOLERANCES,
    MigrationError,
    MigrationRequest,
    PreflightReport,
    Verdict,
    migrate_bundle,
    run_preflight,
)
from repro.migrate.__main__ import main as migrate_main
from repro.util.errors import ArtifactIntegrityError
from repro.validation.__main__ import main as validation_main
from repro.validation.remediate import RemediationPolicy


def _clone_features():
    clone = DittoCloner(validate=True, executor="serial",
                        max_tune_iterations=3).clone(
        CloneRequest(
            deployment=Deployment.single(build_memcached()),
            load=LoadSpec.open_loop(20_000),
            config=ExperimentConfig(platform=PLATFORM_A,
                                    duration_s=0.02)))
    return (clone.report.features,
            {name: r.knobs for name, r in clone.report.tuning.items()})


@pytest.fixture(scope="module")
def clone_parts():
    return _clone_features()


@pytest.fixture(scope="module")
def source_bundle(clone_parts, tmp_path_factory):
    features, knobs = clone_parts
    path = tmp_path_factory.mktemp("migrate") / "source.bundle.json"
    save_bundle(features, path, entry_service="memcached",
                tuned_knobs=knobs, source_platform=PLATFORM_A)
    return path


@pytest.fixture()
def two_node_bundle(clone_parts, tmp_path):
    """A bundle whose DAG spans two nodes (for placement preflight)."""
    features, knobs = clone_parts
    tier = features["memcached"]
    path = tmp_path / "twonode.bundle.json"
    save_bundle({"front": tier, "back": tier}, path,
                entry_service="front",
                placements={"front": "node0", "back": "node1"},
                tuned_knobs={"front": knobs["memcached"],
                             "back": knobs["memcached"]},
                source_platform=PLATFORM_A)
    return path


def _migrate_kwargs(**overrides):
    params = dict(duration_s=0.05, max_tune_iterations=4)
    params.update(overrides)
    return params


class TestPreflight:
    def test_same_platform_is_all_transfers(self, source_bundle):
        report = run_preflight(read_bundle_document(source_bundle),
                               source=PLATFORM_A, destination=PLATFORM_A)
        assert report.passed
        assert report.retune_knobs() == {}
        assert all(v.verdict is Verdict.TRANSFERS for v in report.verdicts)

    def test_cross_platform_flags_stale_knobs(self, source_bundle):
        report = run_preflight(read_bundle_document(source_bundle),
                               source=PLATFORM_A, destination=PLATFORM_B)
        assert report.passed  # nothing blocks — retune is enough
        stale = report.retune_knobs()["memcached"]
        # A and B differ in L2/LLC geometry, uarch and frequency —
        # but share L1 geometry, so the L1-paired knobs carry over
        assert stale == ["big_wset_scale", "ilp_scale",
                         "transition_scale"]
        by_obj = {v.obj: v for v in report.verdicts}
        for knob in ("instr_scale", "chase_scale",  # workload-bound
                     "imem_scale", "dmem_scale"):   # same L1 geometry
            assert by_obj[f"memcached/{knob}"].verdict is Verdict.TRANSFERS

    def test_report_round_trips(self, source_bundle):
        report = run_preflight(read_bundle_document(source_bundle),
                               source=PLATFORM_A, destination=PLATFORM_B)
        clone = PreflightReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.retune_knobs() == report.retune_knobs()

    def test_placement_overflow_blocks_only_overflow_tiers(
            self, two_node_bundle):
        report = run_preflight(read_bundle_document(two_node_bundle),
                               source=PLATFORM_A, destination=PLATFORM_B,
                               destination_nodes=1)
        assert not report.passed
        assert report.blocking() == ["back/placement"]

    def test_allow_degraded_consolidates_placements(self, two_node_bundle):
        report = run_preflight(read_bundle_document(two_node_bundle),
                               source=PLATFORM_A, destination=PLATFORM_B,
                               destination_nodes=1, allow_degraded=True)
        assert report.passed
        assert set(report.consolidated_placements.values()) == {"node0"}
        assert set(report.degraded()) == {"front/placement",
                                          "back/placement"}


class TestMigrateEndToEnd:
    def test_same_platform_publishes_without_retune(self, source_bundle,
                                                    tmp_path):
        out = tmp_path / "a_to_a.json"
        result = migrate_bundle(source_bundle, PLATFORM_A, out,
                                **_migrate_kwargs())
        assert result.fidelity.passed
        assert result.tuning_iterations == {"memcached": 0}
        assert result.retune_deltas == {}
        document = read_bundle_document(out)  # stamped + well-formed
        assert document["format"] == "ditto-migration"
        assert document["version"] == 1
        assert document["migration"]["source"] == "A"
        assert document["migration"]["destination"] == "A"

    def test_cross_platform_retunes_and_passes_gate(self, source_bundle,
                                                    tmp_path):
        out = tmp_path / "a_to_b.json"
        result = migrate_bundle(source_bundle, PLATFORM_B, out,
                                **_migrate_kwargs())
        assert result.fidelity.passed
        assert result.tuning_iterations["memcached"] > 0
        assert result.retune_deltas["memcached"]  # knobs actually moved
        stanza = read_bundle_document(out)["migration"]
        assert stanza["preflight"]["verdicts"]  # embedded reports
        assert stanza["fidelity"]["checks"]
        assert stanza["retune"] == result.retune_deltas
        # the migrated bundle is a strict superset of a clone bundle:
        # every consumer works on it unchanged
        features, entry, _ = load_bundle(out)
        assert entry == "memcached" and "memcached" in features
        synthetic = deployment_from_bundle(out)
        assert "memcached" in synthetic.services

    def test_migration_to_platform_c_passes_gate(self, source_bundle,
                                                 tmp_path):
        result = migrate_bundle(source_bundle, PLATFORM_C,
                                tmp_path / "a_to_c.json",
                                **_migrate_kwargs())
        assert result.fidelity.passed
        assert result.preflight.retune_knobs()["memcached"]

    def test_migration_is_deterministic(self, source_bundle, tmp_path):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        migrate_bundle(source_bundle, PLATFORM_B, first,
                       **_migrate_kwargs())
        migrate_bundle(source_bundle, PLATFORM_B, second,
                       **_migrate_kwargs())
        assert first.read_bytes() == second.read_bytes()

    def test_impossible_destination_refuses_with_zero_work(
            self, two_node_bundle, monkeypatch):
        def no_tuning(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("preflight refusal must spend no tuning")
        monkeypatch.setattr("repro.migrate.engine.fine_tune", no_tuning)
        monkeypatch.setattr("repro.migrate.engine._measure", no_tuning)
        with pytest.raises(MigrationError) as info:
            migrate_bundle(two_node_bundle, PLATFORM_B,
                           destination_nodes=1, **_migrate_kwargs())
        assert info.value.stage == "preflight"
        assert info.value.blocking == ["back/placement"]
        assert info.value.report is not None

    def test_missing_source_platform_refuses(self, clone_parts, tmp_path):
        features, knobs = clone_parts
        legacy = tmp_path / "legacy.bundle.json"
        save_bundle(features, legacy, entry_service="memcached",
                    tuned_knobs=knobs)  # no source_platform stanza
        with pytest.raises(MigrationError) as info:
            migrate_bundle(legacy, PLATFORM_B, **_migrate_kwargs())
        assert info.value.stage == "preflight"
        assert info.value.blocking == ["bundle/source_platform"]
        # an explicit source platform unblocks the same bundle
        report = run_preflight(read_bundle_document(legacy),
                               source=PLATFORM_A, destination=PLATFORM_B)
        assert report.passed

    def test_gate_failure_refuses_after_ladder(self, source_bundle):
        with pytest.raises(MigrationError) as info:
            migrate_bundle(
                source_bundle, PLATFORM_B,
                tolerances={"ipc": 1e-9},
                remediation=RemediationPolicy(max_attempts=0),
                **_migrate_kwargs())
        assert info.value.stage == "gate"
        assert "memcached/ipc" in info.value.blocking

    def test_migration_tolerances_cover_all_gate_metrics(self):
        from repro.validation.gate import COUNTER_METRICS
        assert set(MIGRATION_TOLERANCES) == set(COUNTER_METRICS)


class TestBundleRobustness:
    """load_bundle robustness (corruption quarantines, legacy loads)."""

    def test_legacy_v1_bundle_round_trips(self, source_bundle, tmp_path):
        document = json.loads(source_bundle.read_text())
        document.pop("integrity", None)
        document.pop("source_platform", None)
        document["version"] = 1
        legacy = tmp_path / "v1.bundle.json"
        legacy.write_text(json.dumps(document))
        features, entry, placements = load_bundle(legacy)
        assert entry == "memcached"
        assert "memcached" in features
        assert placements == {}

    def test_truncated_bundle_is_quarantined(self, source_bundle,
                                             tmp_path):
        broken = tmp_path / "truncated.bundle.json"
        broken.write_text(source_bundle.read_text()[:200])
        with pytest.raises(ArtifactIntegrityError) as info:
            load_bundle(broken)
        assert not broken.exists()  # moved aside, never half-loaded
        assert info.value.quarantined_to
        assert info.value.quarantined_to.endswith(".quarantined")

    def test_corrupted_field_is_quarantined(self, source_bundle,
                                            tmp_path):
        document = json.loads(source_bundle.read_text())
        document["entry_service"] = "tampered"
        document["tiers"]["tampered"] = document["tiers"].pop("memcached")
        broken = tmp_path / "tampered.bundle.json"
        broken.write_text(json.dumps(document))
        with pytest.raises(ArtifactIntegrityError):
            load_bundle(broken)
        assert not broken.exists()

    def test_preflight_refuses_quarantined_source(self, source_bundle,
                                                  tmp_path, monkeypatch):
        document = json.loads(source_bundle.read_text())
        document["tuned_knobs"]["memcached"]["instr_scale"] = 99.0
        broken = tmp_path / "flipped.bundle.json"
        broken.write_text(json.dumps(document))

        def no_work(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("quarantined source must end migration")
        monkeypatch.setattr("repro.migrate.engine.run_preflight", no_work)
        with pytest.raises(ArtifactIntegrityError):
            migrate_bundle(broken, PLATFORM_B, **_migrate_kwargs())
        assert not broken.exists()

    def test_corrupt_migrated_bundle_fails_validation_cli(
            self, source_bundle, tmp_path, capsys):
        out = tmp_path / "migrated.json"
        migrate_bundle(source_bundle, PLATFORM_A, out,
                       **_migrate_kwargs())
        document = json.loads(out.read_text())
        document["tuned_knobs"]["memcached"]["instr_scale"] = 42.0
        out.write_text(json.dumps(document))
        code = validation_main([str(out), "--duration", "0.02",
                                "--quiet"])
        assert code != 0
        assert not out.exists()  # quarantined by the integrity layer


class TestMigrateCli:
    def test_publish_exits_zero_and_writes_artifacts(self, source_bundle,
                                                     tmp_path, capsys):
        out = tmp_path / "cli.migrated.json"
        preflight = tmp_path / "preflight.json"
        code = migrate_main([str(source_bundle), "--destination", "A",
                             "--out", str(out),
                             "--preflight-json", str(preflight),
                             "--duration", "0.05", "--quiet"])
        assert code == 0
        assert read_bundle_document(out)["format"] == "ditto-migration"
        report = json.loads(preflight.read_text())
        assert report["format"] == "ditto-preflight-report/1"

    def test_preflight_refusal_exits_two(self, two_node_bundle, tmp_path,
                                         capsys):
        preflight = tmp_path / "refused.preflight.json"
        code = migrate_main([str(two_node_bundle), "--destination", "B",
                             "--destination-nodes", "1",
                             "--preflight-json", str(preflight),
                             "--duration", "0.05", "--quiet"])
        assert code == 2
        report = json.loads(preflight.read_text())
        assert report["blocking"] == ["back/placement"]

    def test_allow_degraded_consolidates_and_publishes(
            self, two_node_bundle, tmp_path, capsys):
        out = tmp_path / "degraded.migrated.json"
        code = migrate_main([str(two_node_bundle), "--destination", "A",
                             "--destination-nodes", "1",
                             "--allow-degraded", "--out", str(out),
                             "--duration", "0.05", "--quiet"])
        assert code == 0
        document = read_bundle_document(out)
        assert set(document["placements"].values()) == {"node0"}
