"""Stable structural hashing: the cache-key foundation."""

import dataclasses
import enum

import numpy as np
import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.hw import PLATFORM_A, PLATFORM_B
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig
from repro.util import ConfigurationError, stable_digest
from repro.util.spec_hash import canonical_bytes


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass
class Point:
    x: float
    y: float


class TestPrimitives:
    def test_stability(self):
        assert stable_digest(1, "a", 2.5) == stable_digest(1, "a", 2.5)

    def test_type_tags_prevent_collisions(self):
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest(True) != stable_digest(1)
        assert stable_digest(None) != stable_digest("")
        assert stable_digest((1, 2)) != stable_digest([1, 2])

    def test_nesting_boundaries(self):
        assert stable_digest([[1], [2]]) != stable_digest([[1, 2]])
        assert stable_digest(("a", "bc")) != stable_digest(("ab", "c"))

    def test_dict_order_independent(self):
        assert (stable_digest({"a": 1, "b": 2})
                == stable_digest({"b": 2, "a": 1}))

    def test_dict_sensitive_to_values(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_set_order_independent(self):
        assert stable_digest({3, 1, 2}) == stable_digest({1, 2, 3})

    def test_numpy_arrays(self):
        a = np.arange(6, dtype=np.float64)
        assert stable_digest(a) == stable_digest(a.copy())
        assert stable_digest(a) != stable_digest(a.reshape(2, 3))
        assert stable_digest(a) != stable_digest(a.astype(np.float32))

    def test_numpy_scalars_match_python(self):
        assert stable_digest(np.int64(7)) == stable_digest(7)
        assert stable_digest(np.float64(1.5)) == stable_digest(1.5)

    def test_enum(self):
        assert stable_digest(Color.RED) == stable_digest(Color.RED)
        assert stable_digest(Color.RED) != stable_digest(Color.BLUE)

    def test_dataclass_fields_matter(self):
        assert stable_digest(Point(1.0, 2.0)) == stable_digest(Point(1.0, 2.0))
        assert stable_digest(Point(1.0, 2.0)) != stable_digest(Point(2.0, 1.0))

    def test_unsupported_type_is_loud(self):
        with pytest.raises(ConfigurationError):
            stable_digest(object())

    def test_canonical_bytes_deterministic(self):
        payload = {"k": [Point(0.5, -0.5), Color.BLUE, np.ones(3)]}
        assert canonical_bytes(payload) == canonical_bytes(payload)


class TestDomainObjects:
    def test_deployment_digest_stable(self):
        a = Deployment.single(build_memcached())
        b = Deployment.single(build_memcached())
        assert stable_digest(a) == stable_digest(b)

    def test_load_and_config_sensitivity(self):
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=5)
        assert (stable_digest(LoadSpec.open_loop(1000))
                != stable_digest(LoadSpec.open_loop(2000)))
        assert (stable_digest(config)
                != stable_digest(dataclasses.replace(config, seed=6)))
        assert (stable_digest(config)
                != stable_digest(dataclasses.replace(config,
                                                     platform=PLATFORM_B)))
