"""Unit tests for the multi-tenancy contention model."""

import pytest

from repro.hw import PLATFORM_A
from repro.hw.contention import (
    CoRunner,
    ContentionFactors,
    NodeOccupancy,
    apply_contention,
    contention_factors,
)
from repro.kernelsim.node import Node
from repro.sim import Environment
from repro.util.errors import ConfigurationError


class TestCoRunner:
    def test_valid_levels(self):
        for level in ("ht", "l1d", "l2", "llc", "net", "disk"):
            CoRunner(level)

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            CoRunner("gpu")

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            CoRunner("llc", intensity=1.5)


class TestContentionFactors:
    def test_no_corunners_is_identity(self):
        factors = contention_factors(1e6, [])
        assert factors == ContentionFactors()

    def test_ht_spinner_raises_smt_contention(self):
        factors = contention_factors(
            1e6, [CoRunner("ht", same_physical_core=True)])
        assert factors.smt_contention == 2.0
        assert factors.llc_factor == 1.0

    def test_ht_off_core_has_no_effect(self):
        factors = contention_factors(
            1e6, [CoRunner("ht", same_physical_core=False)])
        assert factors.smt_contention == 1.0

    def test_l1d_thrasher_halves_l1(self):
        factors = contention_factors(
            1e6, [CoRunner("l1d", footprint_bytes=64 * 1024,
                           same_physical_core=True)])
        assert factors.l1d_factor < 1.0

    def test_llc_antagonist_capacity_proportional(self):
        small_victim = contention_factors(
            4e6, [CoRunner("llc", footprint_bytes=64e6)])
        big_victim = contention_factors(
            64e6, [CoRunner("llc", footprint_bytes=64e6)])
        assert small_victim.llc_factor < big_victim.llc_factor

    def test_net_hog_halves_bandwidth(self):
        factors = contention_factors(1e6, [CoRunner("net")])
        assert factors.net_share == pytest.approx(0.5)

    def test_multiple_corunners_compose(self):
        factors = contention_factors(1e6, [
            CoRunner("ht", same_physical_core=True),
            CoRunner("llc", footprint_bytes=64e6),
            CoRunner("net"),
        ])
        assert factors.smt_contention == 2.0
        assert factors.llc_factor < 1.0
        assert factors.net_share < 1.0


class TestApplyContention:
    def test_cache_capacities_scale(self):
        ctx = PLATFORM_A.context()
        factors = ContentionFactors(llc_factor=0.5, smt_contention=1.5)
        degraded = apply_contention(ctx, factors)
        assert degraded.caches.llc.size_bytes < ctx.caches.llc.size_bytes
        assert degraded.smt_contention == 1.5

    def test_identity_factors_keep_sizes(self):
        ctx = PLATFORM_A.context()
        degraded = apply_contention(ctx, ContentionFactors())
        assert degraded.caches.llc.size_bytes == ctx.caches.llc.size_bytes


class TestNodeOccupancy:
    def _occupancy(self, handlers):
        env = Environment()
        node = Node(env, PLATFORM_A)
        return NodeOccupancy(platform=PLATFORM_A, active_handlers=handlers)

    def test_single_handler_keeps_full_share(self):
        assert self._occupancy(1.0).shared_cache_factor(1e6) == 1.0

    def test_fits_within_llc_no_penalty(self):
        # 4 handlers x 1MB << 30MB LLC.
        assert self._occupancy(4.0).shared_cache_factor(1e6) == 1.0

    def test_overflow_shrinks_share(self):
        # 64 handlers x 4MB >> 30MB LLC.
        factor = self._occupancy(64.0).shared_cache_factor(4e6)
        assert factor < 1.0
        assert factor >= 0.2
