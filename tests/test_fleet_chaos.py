"""Chaos-hardening the fleet: crashpoints, fencing, DLQ, drain.

The proof obligation of the chaos layer: for **every** named crashpoint
in the control plane, killing the fleet there, recovering, and
re-running publishes a bundle bit-identical to a never-crashed control
run. Plus the failure modes that are not plain kills: torn writes land
in quarantine, ENOSPC becomes job state, zombie workers are fenced off
the store, poison jobs dead-letter after their crash budget, and
SIGTERM drains the scheduler without orphaning anything.
"""

import json
import os
import signal
import time

import pytest

from repro import (
    CloneRequest,
    Deployment,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
)
from repro.fleet import (
    CRASHPOINTS,
    ChaosAction,
    ChaosKill,
    ChaosPlan,
    CloneJobSpec,
    FleetClient,
    FleetScheduler,
    JobState,
    JobStore,
    execute_job,
)
from repro.fleet import chaos as chaos_mod
from repro.fleet.__main__ import main as fleet_main
from repro.hw.platform import PLATFORM_B
from repro.migrate import MigrationRequest
from repro.fleet.store import DEFAULT_STORE_CONFIG
from repro.profiling import ProfilingBudget
from repro.util.errors import (
    ArtifactIntegrityError,
    ConfigurationError,
    FaultInjectionError,
    JobStateError,
    LeaseFencedError,
)

FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)
LOAD = LoadSpec.open_loop(2000)
CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015, seed=5)


def _request(**overrides):
    fields = dict(
        deployment=Deployment.single(build_memcached()),
        load=LOAD, config=CONFIG, seed=17, budget=FAST_BUDGET,
        fine_tune_tiers=True, max_tune_iterations=1,
    )
    fields.update(overrides)
    return CloneRequest(**fields)


def _chaos_store(path, **overrides):
    """A store tuned for crash-restart cycles inside one test: stale
    leases reap instantly and crash backoffs do not slow the rerun."""
    config = dict(lease_timeout_s=0.0, heartbeat_interval_s=0.0,
                  crash_backoff_s=0.0)
    config.update(overrides)
    return JobStore(str(path), **config)


@pytest.fixture(autouse=True)
def _no_injector_leaks():
    """Chaos installs are per-process globals; never leak across tests."""
    yield
    chaos_mod.uninstall()


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """A never-crashed run of the canonical spec: the reference output."""
    store = JobStore(str(tmp_path_factory.mktemp("chaos-control")))
    record = store.submit(CloneJobSpec(request=_request()))
    outcomes = FleetScheduler(store, executor="serial").run_until_idle()
    assert [o.state for o in outcomes] == [JobState.PUBLISHED]
    final = store.get(record.job_id)
    with open(store.bundle_path(record.job_id), encoding="utf-8") as f:
        bundle = json.load(f)
    return final.result_digest, bundle


def _assert_identical(store, job_id, control):
    control_digest, control_bundle = control
    final = store.get(job_id)
    assert final.state is JobState.PUBLISHED
    assert final.result_digest == control_digest
    with open(store.bundle_path(job_id), encoding="utf-8") as f:
        assert json.load(f) == control_bundle


# ---------------------------------------------------------------------- #
# plans: validation + serialization
# ---------------------------------------------------------------------- #
class TestChaosPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = ChaosPlan(seed=7, actions=(
            ChaosAction(point="worker.publish.pre_artifact"),
            ChaosAction(point="store.save.pre_write", action="delay",
                        delay_s=0.25, on_hit=0, probability=0.5),
        ))
        path = str(tmp_path / "plan.json")
        plan.to_file(path)
        assert ChaosPlan.from_file(path) == plan
        assert plan.to_dict()["format"] == "ditto-chaos-plan/1"

    def test_empty_plan(self):
        assert ChaosPlan.empty().is_empty
        assert not ChaosPlan.empty()
        assert bool(ChaosPlan(actions=(
            ChaosAction(point="scheduler.round.pre_claim"),)))

    def test_rejects_bad_input(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ChaosAction(point="no.such.point")
        with pytest.raises(ConfigurationError):
            ChaosAction(point="store.save.pre_write", action="explode")
        with pytest.raises(ConfigurationError):
            ChaosAction(point="store.save.pre_write", on_hit=-1)
        with pytest.raises(ConfigurationError):
            ChaosAction(point="store.save.pre_write", probability=1.5)
        with pytest.raises(ConfigurationError):
            ChaosAction.from_dict({"point": "store.save.pre_write",
                                   "extra": 1})
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_dict({"format": "ditto-chaos-plan/99"})
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_dict({"actions": "not-a-list"})
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_file(str(bad))

    def test_every_action_name_targets_a_registered_point(self):
        for point in CRASHPOINTS:
            ChaosAction(point=point)  # must not raise


class TestInjector:
    def test_on_hit_selects_the_visit(self):
        plan = ChaosPlan(actions=(
            ChaosAction(point="scheduler.round.pre_claim",
                        action="raise", on_hit=2),))
        injector = chaos_mod.ChaosInjector(plan)
        injector.hit("scheduler.round.pre_claim")  # first visit: armed off
        with pytest.raises(FaultInjectionError):
            injector.hit("scheduler.round.pre_claim")
        injector.hit("scheduler.round.pre_claim")  # third visit: past it
        assert injector.hits["scheduler.round.pre_claim"] == 3

    def test_probability_stream_is_deterministic(self):
        def pattern(seed):
            plan = ChaosPlan(seed=seed, actions=(
                ChaosAction(point="scheduler.round.pre_claim",
                            action="raise", on_hit=0, probability=0.4),))
            injector = chaos_mod.ChaosInjector(plan)
            fired = []
            for _ in range(24):
                try:
                    injector.hit("scheduler.round.pre_claim")
                    fired.append(False)
                except FaultInjectionError:
                    fired.append(True)
            return fired

        assert pattern(11) == pattern(11)
        assert any(pattern(11)) and not all(pattern(11))
        assert pattern(11) != pattern(12)

    def test_unregistered_point_is_an_error(self):
        injector = chaos_mod.ChaosInjector(ChaosPlan.empty())
        with pytest.raises(ConfigurationError):
            injector.hit("typo.in.the.instrumentation")

    def test_single_installation(self):
        chaos_mod.install(ChaosPlan.empty())
        with pytest.raises(ConfigurationError):
            chaos_mod.install(ChaosPlan.empty())
        chaos_mod.uninstall()
        chaos_mod.uninstall()  # idempotent
        assert chaos_mod.current_injector() is None

    def test_delay_action_sleeps(self):
        plan = ChaosPlan(actions=(
            ChaosAction(point="scheduler.round.pre_claim",
                        action="delay", delay_s=0.05),))
        injector = chaos_mod.ChaosInjector(plan)
        start = time.monotonic()
        injector.hit("scheduler.round.pre_claim")
        assert time.monotonic() - start >= 0.05


# ---------------------------------------------------------------------- #
# the chaos matrix: kill everywhere, recover, publish identically
# ---------------------------------------------------------------------- #
#: crashpoints a single scheduler run visits. ``store.submit.post_claim``
#: fires at submit time (own test below),
#: ``lease.heartbeat.pre_replace`` on the worker's daemon beat thread,
#: where a kill dies silently (covered by the direct-call test), and
#: the ``worker.migrate.*`` points only on migration jobs (own kill
#: matrix in :class:`TestMigrationChaos`).
KILL_MATRIX = tuple(point for point in CRASHPOINTS
                    if point not in ("store.submit.post_claim",
                                     "lease.heartbeat.pre_replace")
                    and not point.startswith("worker.migrate."))

MIGRATE_KILL_MATRIX = tuple(point for point in CRASHPOINTS
                            if point.startswith("worker.migrate."))


class TestKillMatrix:
    @pytest.mark.parametrize("point", KILL_MATRIX)
    def test_kill_recover_rerun_is_bit_identical(self, tmp_path, control,
                                                 point):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        plan = ChaosPlan(actions=(ChaosAction(point=point),))
        with pytest.raises(ChaosKill):
            FleetScheduler(store, executor="serial",
                           chaos=plan).run_until_idle()
        # The killed run may have left the record queued, mid-phase with
        # an orphaned lease, or already published — recovery (run at the
        # top of every round) plus a clean rerun must converge on the
        # control output regardless.
        FleetScheduler(store, executor="serial").run_until_idle()
        _assert_identical(store, record.job_id, control)

    def test_kill_during_submit_leaves_store_usable(self, tmp_path,
                                                    control):
        store = _chaos_store(tmp_path)
        plan = ChaosPlan(actions=(
            ChaosAction(point="store.submit.post_claim"),))
        with chaos_mod.active(plan):
            with pytest.raises(ChaosKill):
                FleetClient(store).submit(_request())
        assert store.list() == []  # the burned id claim is invisible
        record = FleetClient(store).submit(_request())
        FleetScheduler(store, executor="serial").run_until_idle()
        _assert_identical(store, record.job_id, control)

    def test_kill_during_heartbeat_fences_not_crashes(self, tmp_path):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        epoch = store.claim_lease(record.job_id)
        plan = ChaosPlan(actions=(
            ChaosAction(point="lease.heartbeat.pre_replace"),))
        with chaos_mod.active(plan):
            with pytest.raises(ChaosKill):
                store.heartbeat(record.job_id, epoch)
        # The refresh died before its atomic replace: the old lease
        # payload is intact and the epoch still valid.
        assert store.lease_info(record.job_id)["epoch"] == epoch
        store.check_fence(record.job_id, epoch)
        store.release_lease(record.job_id, epoch=epoch)


class TestCrashpointCoverage:
    def test_full_run_visits_every_crashpoint(self, tmp_path, control):
        """An empty plan is bit-identical to no chaos at all, and one
        fleet run (plus the lease calls a clean run skips) touches every
        registered crashpoint — instrumentation cannot silently rot."""
        store = _chaos_store(tmp_path, heartbeat_interval_s=0.005)
        with chaos_mod.active(ChaosPlan.empty()) as injector:
            record = FleetClient(store).submit(_request())
            outcomes = FleetScheduler(
                store, executor="serial").run_until_idle()
            # the worker.migrate.* points only fire on migration jobs:
            # migrate the freshly published bundle back onto its own
            # platform (all-TRANSFERS preflight, no tuning — cheap)
            migration = FleetClient(store).submit(MigrationRequest(
                bundle_path=store.bundle_path(record.job_id),
                destination=PLATFORM_A, duration_s=0.05,
                max_tune_iterations=1))
            migrated = FleetScheduler(
                store, executor="serial").run_until_idle()
            # a clean run never beats deterministically nor releases a
            # fenced lease by hand — drive those two points directly
            epoch = store.claim_lease(record.job_id)
            assert store.heartbeat(record.job_id, epoch)
            store.release_lease(record.job_id, epoch=epoch)
        assert [o.state for o in outcomes] == [JobState.PUBLISHED]
        assert [o.state for o in migrated] == [JobState.PUBLISHED]
        assert store.get(migration.job_id).state is JobState.PUBLISHED
        _assert_identical(store, record.job_id, control)
        missing = set(CRASHPOINTS) - injector.visited
        assert not missing, f"crashpoints never visited: {sorted(missing)}"


# ---------------------------------------------------------------------- #
# migration jobs under chaos: same proof obligation as clone jobs
# ---------------------------------------------------------------------- #
def _migration_request(source_bundle) -> MigrationRequest:
    return MigrationRequest(bundle_path=str(source_bundle),
                            destination=PLATFORM_B,
                            duration_s=0.05, max_tune_iterations=3)


@pytest.fixture(scope="module")
def migration_source(tmp_path_factory, control):
    """The control run's published clone bundle, as a migration source
    (fleet bundles record their platform, so no override needed)."""
    path = tmp_path_factory.mktemp("chaos-migrate") / "source.bundle.json"
    path.write_text(json.dumps(control[1]))
    return path


@pytest.fixture(scope="module")
def migration_control(tmp_path_factory, migration_source):
    """A never-crashed A→B migration: the reference output."""
    store = JobStore(str(tmp_path_factory.mktemp("migrate-control")))
    record = FleetClient(store).submit(
        _migration_request(migration_source))
    outcomes = FleetScheduler(store, executor="serial").run_until_idle()
    assert [o.state for o in outcomes] == [JobState.PUBLISHED]
    final = store.get(record.job_id)
    with open(store.bundle_path(record.job_id), encoding="utf-8") as f:
        bundle = json.load(f)
    return final.result_digest, bundle


class TestMigrationChaos:
    @pytest.mark.parametrize("point", MIGRATE_KILL_MATRIX)
    def test_kill_recover_rerun_is_bit_identical(
            self, tmp_path, migration_source, migration_control, point):
        """Killing a migration at any of its crashpoints, recovering and
        re-running publishes a migrated bundle byte-identical to the
        never-crashed control — determinism makes whole-job re-runs the
        checkpoint strategy."""
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(
            _migration_request(migration_source))
        plan = ChaosPlan(actions=(ChaosAction(point=point),))
        with pytest.raises(ChaosKill):
            FleetScheduler(store, executor="serial",
                           chaos=plan).run_until_idle()
        FleetScheduler(store, executor="serial").run_until_idle()
        final = store.get(record.job_id)
        assert final.state is JobState.PUBLISHED
        assert final.result_digest == migration_control[0]
        with open(store.bundle_path(record.job_id),
                  encoding="utf-8") as f:
            assert json.load(f) == migration_control[1]

    def test_crash_mid_retune_requeues_through_recovery(
            self, tmp_path, migration_source):
        """A kill right after preflight leaves the record mid-retune
        with an orphaned lease; recover() requeues it with reason
        ``recovered`` rather than losing or dead-lettering it."""
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(
            _migration_request(migration_source))
        plan = ChaosPlan(actions=(
            ChaosAction(point="worker.migrate.post_preflight"),))
        with pytest.raises(ChaosKill):
            FleetScheduler(store, executor="serial",
                           chaos=plan).run_until_idle()
        crashed = store.get(record.job_id)
        assert crashed.state is JobState.MIGRATING_RETUNE
        requeued = store.recover()
        assert requeued == [record.job_id]
        assert store.get(record.job_id).state is JobState.SUBMITTED


class TestMigrationFlightLog:
    def test_migrating_edges_reconstruct_from_flight_log(
            self, tmp_path, migration_source):
        store = JobStore(str(tmp_path), flight=True,
                         lease_timeout_s=0.0, heartbeat_interval_s=0.0,
                         crash_backoff_s=0.0)
        record = FleetClient(store).submit(
            _migration_request(migration_source))
        FleetScheduler(store, executor="serial").run_until_idle()
        from repro.fleet import read_flight_log
        flight = read_flight_log(store.flight_path)
        assert flight.lifecycle(record.job_id) == [
            "submitted", "migrating_preflight", "migrating_retune",
            "migrating_gate", "published"]


# ---------------------------------------------------------------------- #
# non-kill misfortunes
# ---------------------------------------------------------------------- #
class TestFailureModes:
    def test_torn_write_is_quarantined_not_trusted(self, tmp_path):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        plan = ChaosPlan(actions=(
            ChaosAction(point="store.save.post_write",
                        action="torn_write"),))
        with chaos_mod.active(plan):
            with pytest.raises(ChaosKill):
                store.save(record)
        with pytest.raises(ArtifactIntegrityError):
            store.get(record.job_id)
        assert store.list() == []  # quarantined, not poisoning the store
        # and the store keeps working for new submissions
        assert FleetClient(store).submit(_request()).job_id

    def test_enospc_becomes_job_state_and_reruns_clean(self, tmp_path,
                                                       control):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        plan = ChaosPlan(actions=(
            ChaosAction(point="worker.publish.pre_artifact",
                        action="enospc"),))
        outcomes = FleetScheduler(store, executor="serial",
                                  chaos=plan).run_until_idle()
        assert [o.state for o in outcomes] == [JobState.FAILED]
        failed = store.get(record.job_id)
        assert failed.state is JobState.FAILED
        assert "No space left" in failed.error
        # disk freed: resubmit the failed job and publish identically
        store.transition(failed, JobState.SUBMITTED, reason="resubmit")
        FleetScheduler(store, executor="serial").run_until_idle()
        _assert_identical(store, record.job_id, control)

    def test_injected_fault_becomes_failed_not_crash(self, tmp_path):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        plan = ChaosPlan(actions=(
            ChaosAction(point="worker.publish.pre_artifact",
                        action="raise"),))
        outcomes = FleetScheduler(store, executor="serial",
                                  chaos=plan).run_until_idle()
        assert [o.state for o in outcomes] == [JobState.FAILED]
        assert "FaultInjectionError" in store.get(record.job_id).error


# ---------------------------------------------------------------------- #
# fenced leases: epochs, heartbeats, zombies
# ---------------------------------------------------------------------- #
class TestFencing:
    def test_epochs_are_monotonic_per_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = FleetClient(store).submit(_request())
        first = store.claim_lease(record.job_id)
        assert first == 1
        assert store.claim_lease(record.job_id) is None  # held
        store.release_lease(record.job_id, epoch=first)
        assert store.claim_lease(record.job_id) == 2

    def test_check_fence_rejects_superseded_epochs(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = FleetClient(store).submit(_request())
        old = store.claim_lease(record.job_id)
        store.check_fence(record.job_id, old)  # still the owner: fine
        store.release_lease(record.job_id, epoch=old)
        new = store.claim_lease(record.job_id)
        with pytest.raises(LeaseFencedError) as exc:
            store.check_fence(record.job_id, old)
        assert exc.value.current == new
        store.release_lease(record.job_id, epoch=new)
        with pytest.raises(LeaseFencedError) as exc:
            store.check_fence(record.job_id, new)
        assert exc.value.current is None

    def test_stale_release_cannot_clobber_new_owner(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = FleetClient(store).submit(_request())
        old = store.claim_lease(record.job_id)
        store.release_lease(record.job_id, epoch=old)
        new = store.claim_lease(record.job_id)
        store.release_lease(record.job_id, epoch=old)  # stale: no-op
        assert store.lease_info(record.job_id)["epoch"] == new

    def test_zombie_worker_cannot_publish(self, tmp_path, control):
        """A worker resumed after its lease was re-claimed reports a
        fenced outcome and leaves the record byte-for-byte alone."""
        store = JobStore(str(tmp_path), flight=True)
        record = FleetClient(store).submit(_request())
        old = store.claim_lease(record.job_id)
        store.release_lease(record.job_id)  # fleet declared it dead
        new = store.claim_lease(record.job_id)
        outcome = execute_job(store.root, record.job_id,
                              collect_telemetry=False, epoch=old)
        assert outcome.fenced
        assert outcome.state is JobState.SUBMITTED
        untouched = store.get(record.job_id)
        assert untouched.state is JobState.SUBMITTED
        assert untouched.history == []
        assert untouched.result_digest == ""
        log = FleetClient(store).flight_log()
        assert len(log.filter(kind="worker_fenced")) == 1
        # the legitimate claim still runs the job to the control output
        live = execute_job(store.root, record.job_id,
                           collect_telemetry=False, epoch=new)
        assert live.state is JobState.PUBLISHED
        store.release_lease(record.job_id, epoch=new)
        _assert_identical(store, record.job_id, control)

    def test_stale_heartbeat_requeues_despite_live_pid(self, tmp_path):
        """pid-liveness alone never keeps a job: pids get recycled."""
        store = JobStore(str(tmp_path), lease_timeout_s=0.05,
                         heartbeat_interval_s=0.0)
        record = FleetClient(store).submit(_request())
        epoch = store.claim_lease(record.job_id)  # our own, live pid
        time.sleep(0.12)
        assert store.recover() == [record.job_id]
        requeued = store.get(record.job_id)
        assert requeued.state is JobState.SUBMITTED
        assert requeued.crash_count == 1
        assert not os.path.exists(store.lease_path(record.job_id))
        # ...and the demoted epoch is fenced off the store
        with pytest.raises(LeaseFencedError):
            store.check_fence(record.job_id, epoch)

    def test_heartbeat_keeps_a_slow_worker_alive(self, tmp_path):
        store = JobStore(str(tmp_path), lease_timeout_s=0.05,
                         heartbeat_interval_s=0.0)
        record = FleetClient(store).submit(_request())
        epoch = store.claim_lease(record.job_id)
        time.sleep(0.12)
        assert store.heartbeat(record.job_id, epoch)  # the beat arrives
        assert store.recover() == []  # fresh heart: owner is alive
        store.release_lease(record.job_id, epoch=epoch)


# ---------------------------------------------------------------------- #
# dead-letter queue
# ---------------------------------------------------------------------- #
class TestDeadLetter:
    def test_poison_job_dead_letters_after_budget(self, tmp_path, control,
                                                  capsys):
        store = _chaos_store(tmp_path, crash_backoff_s=0.01, flight=True)
        client = FleetClient(store)
        record = client.submit(_request(), max_crashes=2)
        plan = ChaosPlan(actions=(
            ChaosAction(point="worker.publish.pre_artifact"),))
        crashes, backoffs = 0, []
        for _ in range(6):
            try:
                FleetScheduler(store, executor="serial",
                               chaos=plan).run_until_idle()
            except ChaosKill:
                crashes += 1
            current = store.get(record.job_id)
            if current.next_attempt_at:
                backoffs.append(current.next_attempt_at)
            if current.state is JobState.DEAD_LETTERED:
                break
        final = store.get(record.job_id)
        assert final.state is JobState.DEAD_LETTERED
        assert crashes == 3  # budget 2 + the final straw
        assert final.crash_count == 3
        assert "dead-lettered after 3 crashes (budget 2)" in final.error
        assert sorted(backoffs) == backoffs  # exponential: non-decreasing
        # observable everywhere: /jobs entry, flight log, counter, CLI
        from repro.fleet.obs.httpd import _job_entry
        entry = _job_entry(final)
        assert entry["state"] == "dead_lettered"
        assert entry["crashes"] == 3
        log = client.flight_log()
        assert len(log.filter(kind="job_dead_lettered")) == 1
        assert store.registry.get(
            "ditto_fleet_jobs_dead_lettered_total").total() == 1
        assert fleet_main(["dlq", "--store", store.root, "list"]) == 0
        out = capsys.readouterr().out
        assert record.job_id in out and "crashes: 3" in out
        # retry resets the budget and the job publishes clean
        assert fleet_main(["dlq", "--store", store.root, "retry",
                           record.job_id]) == 0
        retried = store.get(record.job_id)
        assert retried.state is JobState.SUBMITTED
        assert retried.crash_count == 0
        FleetScheduler(store, executor="serial").run_until_idle()
        _assert_identical(store, record.job_id, control)

    def test_retry_requires_a_dead_lettered_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = FleetClient(store).submit(_request())
        with pytest.raises(JobStateError):
            store.retry_dead_letter(record.job_id)

    def test_dlq_retry_without_id_is_usage_error(self, tmp_path, capsys):
        assert fleet_main(["dlq", "--store", str(tmp_path),
                           "retry"]) == 2
        assert "job id" in capsys.readouterr().err

    def test_watch_exits_nonzero_for_dead_lettered(self, tmp_path,
                                                   capsys):
        store = _chaos_store(tmp_path, max_crashes=0)
        record = FleetClient(store).submit(_request())
        store.claim_lease(record.job_id, pid=2 ** 22 + 12345)
        assert store.recover() == [record.job_id]  # budget 0: straight in
        assert store.get(record.job_id).state is JobState.DEAD_LETTERED
        assert fleet_main(["watch", "--store", store.root, record.job_id,
                           "--timeout", "1"]) == 1


# ---------------------------------------------------------------------- #
# graceful drain
# ---------------------------------------------------------------------- #
class TestGracefulDrain:
    def test_sigterm_drains_without_orphans(self, tmp_path, control):
        store = _chaos_store(tmp_path, flight=True)
        client = FleetClient(store)
        records = [client.submit(_request()) for _ in range(3)]
        # deliver a real SIGTERM the moment the first job publishes
        plan = ChaosPlan(actions=(
            ChaosAction(point="worker.publish.post_transition",
                        action="signal", signum=signal.SIGTERM),))
        previous = signal.getsignal(signal.SIGTERM)
        with FleetScheduler(store, executor="serial", chaos=plan,
                            serve_metrics=True) as scheduler:
            assert scheduler.status_server is not None
            outcomes = scheduler.run_until_idle()
            assert scheduler.draining and not scheduler.aborted
        assert scheduler.status_server is None  # endpoint closed
        assert signal.getsignal(signal.SIGTERM) == previous  # restored
        # exactly one job finished; the rest stay cleanly queued
        assert [o.state for o in outcomes] == [JobState.PUBLISHED]
        states = [store.get(r.job_id).state for r in records]
        assert states.count(JobState.PUBLISHED) == 1
        assert states.count(JobState.SUBMITTED) == 2
        for record in records:  # zero orphaned leases or running records
            assert not os.path.exists(store.lease_path(record.job_id))
        assert store.list(
            (JobState.PROFILING, JobState.TUNING,
             JobState.VALIDATING)) == []
        assert len(client.flight_log().filter(kind="drain_requested")) == 1
        # a later, calmer scheduler finishes the drained-over work
        FleetScheduler(store, executor="serial").run_until_idle()
        for record in records:
            _assert_identical(store, record.job_id, control)

    def test_second_signal_is_a_hard_stop(self, tmp_path):
        scheduler = FleetScheduler(_chaos_store(tmp_path))
        scheduler._handle_signal(signal.SIGTERM, None)
        assert scheduler.draining and not scheduler.aborted
        scheduler._handle_signal(signal.SIGTERM, None)
        assert scheduler.aborted

    def test_drain_before_run_claims_nothing(self, tmp_path):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        scheduler = FleetScheduler(store, executor="serial")
        scheduler.request_drain()
        assert scheduler.run_until_idle() == []
        assert store.get(record.job_id).state is JobState.SUBMITTED
        assert not os.path.exists(store.lease_path(record.job_id))


# ---------------------------------------------------------------------- #
# satellites: mid-batch cancel, out-of-band errors, store config, CLI
# ---------------------------------------------------------------------- #
class TestMidBatchCancel:
    def test_cancel_between_claim_and_pickup(self, tmp_path):
        """Semantics: a cancel landing after the scheduler claimed the
        lease but before the worker picked the job up resolves at worker
        start — one clean ``submitted → cancelled`` edge, no phases."""
        store = JobStore(str(tmp_path))
        record = FleetClient(store).submit(_request())
        epoch = store.claim_lease(record.job_id)
        store.request_cancel(record.job_id)  # lease held: marker only
        assert store.get(record.job_id).state is JobState.SUBMITTED
        outcome = execute_job(store.root, record.job_id,
                              collect_telemetry=False, epoch=epoch)
        store.release_lease(record.job_id, epoch=epoch)
        assert outcome.state is JobState.CANCELLED
        final = store.get(record.job_id)
        assert final.state is JobState.CANCELLED
        assert final.error == "cancelled before start"
        assert [(e.from_state, e.to_state) for e in final.history] == [
            (JobState.SUBMITTED, JobState.CANCELLED)]


class TestOutOfBandFailure:
    def test_error_is_persisted_before_the_failed_edge(self, tmp_path):
        store = _chaos_store(tmp_path)
        record = FleetClient(store).submit(_request())
        scheduler = FleetScheduler(store, executor="serial")
        outcome = scheduler._fail_out_of_band(
            record.job_id, RuntimeError("worker exploded unpicklably"))
        assert outcome.state is JobState.FAILED
        final = store.get(record.job_id)
        assert final.state is JobState.FAILED
        assert "worker exploded unpicklably" in final.error
        assert "worker exploded unpicklably" in final.history[-1].reason


class TestStoreConfig:
    def test_overrides_persist_to_fleet_json(self, tmp_path):
        store = JobStore(str(tmp_path / "a"), lease_timeout_s=5.0,
                         max_crashes=7)
        assert store.lease_timeout_s == 5.0
        assert store.max_crashes == 7
        again = JobStore(str(tmp_path / "a"))  # no overrides: reads them
        assert again.lease_timeout_s == 5.0
        assert again.max_crashes == 7
        assert again.crash_backoff_s == \
            DEFAULT_STORE_CONFIG["crash_backoff_s"]

    def test_plain_store_writes_no_config(self, tmp_path):
        store = JobStore(str(tmp_path / "plain"))
        assert not os.path.exists(store.config_path)
        for key, value in DEFAULT_STORE_CONFIG.items():
            assert getattr(store, key) == value

    def test_invalid_config_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobStore(str(tmp_path / "x"), max_crashes=-1)
        with pytest.raises(ConfigurationError):
            JobStore(str(tmp_path / "y"), lease_timeout_s=-0.5)


class TestChaosCLI:
    def test_run_chaos_crashes_recovers_and_publishes(self, tmp_path,
                                                      capsys):
        submit = ["--workload", "memcached", "--fast",
                  "--tune-iterations", "1"]
        # the never-crashed control, through the same CLI surface
        control_store = _chaos_store(tmp_path / "control")
        assert fleet_main(["submit", "--store", control_store.root]
                          + submit) == 0
        control_id = capsys.readouterr().out.strip()
        assert fleet_main(["run", "--store", control_store.root,
                           "--executor", "serial"]) == 0
        control_final = control_store.get(control_id)
        with open(control_store.bundle_path(control_id),
                  encoding="utf-8") as f:
            cli_control = (control_final.result_digest, json.load(f))

        store = _chaos_store(tmp_path / "store")  # config lands in
        plan = ChaosPlan(actions=(                # fleet.json for the CLI
            ChaosAction(point="worker.publish.pre_artifact"),))
        plan_path = str(tmp_path / "plan.json")
        plan.to_file(plan_path)
        capsys.readouterr()
        assert fleet_main(["submit", "--store", store.root]
                          + submit) == 0
        job_id = capsys.readouterr().out.strip()
        assert fleet_main(["run", "--store", store.root,
                           "--executor", "serial",
                           "--chaos", plan_path]) == 70
        assert "chaos" in capsys.readouterr().err
        assert fleet_main(["run", "--store", store.root,
                           "--executor", "serial"]) == 0
        capsys.readouterr()
        assert fleet_main(["show", "--store", store.root, job_id]) == 0
        shown = capsys.readouterr().out
        assert "crashes survived: 1" in shown
        _assert_identical(store, job_id, cli_control)

    def test_run_rejects_an_invalid_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"actions": [{"point": "no.such.point"}]}))
        assert fleet_main(["run", "--store", str(tmp_path / "s"),
                           "--chaos", str(plan_path)]) == 1
        assert "error" in capsys.readouterr().err
