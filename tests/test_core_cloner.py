"""Integration tests: fine tuning and end-to-end cloning."""

import pytest

from repro.analysis import compare_metrics
from repro.app.service import Deployment
from repro.app.workloads import build_memcached, build_nginx, build_redis
from repro.core import CloneRequest, DittoCloner, GeneratorConfig, fine_tune
from repro.core.features import extract_service_features
from repro.hw import PLATFORM_A, PLATFORM_B
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment
from repro.runtime import ExperimentConfig, run_experiment

FAST_BUDGET = ProfilingBudget(
    sampled_requests=8, max_accesses_per_spec=512,
    max_istream_per_block=2048, branch_outcomes_per_site=128,
    max_sites_per_population=8, dep_samples_per_block=48,
    profile_duration_s=0.015,
)


@pytest.fixture(scope="module")
def memcached_clone():
    deployment = Deployment.single(build_memcached())
    load = LoadSpec.open_loop(100000)
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)
    cloner = DittoCloner(fine_tune_tiers=True, max_tune_iterations=6,
                         budget=FAST_BUDGET)
    result = cloner.clone(CloneRequest(deployment=deployment, load=load,
                                       config=config))
    return deployment, result.synthetic, result.report, load


class TestFineTune:
    def test_reduces_or_holds_error(self):
        deployment = Deployment.single(build_redis())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015,
                                  seed=5)
        profile = profile_deployment(deployment, LoadSpec.closed_loop(4),
                                     config, budget=FAST_BUDGET)
        features = extract_service_features(profile.artifacts("redis"))
        result = fine_tune(features, platform_config=config,
                           max_iterations=4)
        assert result.iterations <= 4
        assert result.error_history
        assert min(result.error_history) <= result.error_history[0] + 0.02

    def test_converged_flag_consistent(self, memcached_clone):
        _dep, _synth, report, _load = memcached_clone
        tuning = report.tuning["memcached"]
        if tuning.converged:
            assert min(tuning.error_history) <= 0.05 + 1e-9


class TestSingleTierClone:
    def test_clone_is_droppable(self, memcached_clone):
        deployment, synthetic, _report, _load = memcached_clone
        assert set(synthetic.services) == set(deployment.services)
        assert synthetic.entry_service == deployment.entry_service

    def test_clone_conceals_original_blocks(self, memcached_clone):
        deployment, synthetic, _report, _load = memcached_clone
        original_blocks = {
            b.name for b in
            deployment.services["memcached"].program.all_blocks()}
        synthetic_blocks = {
            b.name for b in
            synthetic.services["memcached"].program.all_blocks()}
        assert not original_blocks & synthetic_blocks

    def test_counters_match_within_paper_band(self, memcached_clone):
        deployment, synthetic, _report, load = memcached_clone
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=9)
        actual = run_experiment(deployment, load, vcfg)
        synth = run_experiment(synthetic, load, vcfg)
        report = compare_metrics(actual.service("memcached"),
                                 synth.service("memcached"))
        # Paper-reported mean errors are 4-12% per metric; allow headroom
        # for the much shorter profiling budget used in tests.
        assert report.error_of("ipc") < 0.25
        assert report.mean_error(["ipc", "branch", "l1d", "l1i"]) < 0.30

    def test_network_bandwidth_matches(self, memcached_clone):
        deployment, synthetic, _report, load = memcached_clone
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=9)
        actual = run_experiment(deployment, load, vcfg)
        synth = run_experiment(synthetic, load, vcfg)
        a = actual.net_bandwidth("memcached")
        s = synth.net_bandwidth("memcached")
        assert s == pytest.approx(a, rel=0.15)

    def test_latency_same_order(self, memcached_clone):
        deployment, synthetic, _report, load = memcached_clone
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=9)
        actual = run_experiment(deployment, load, vcfg)
        synth = run_experiment(synthetic, load, vcfg)
        assert synth.latency_ms(99) == pytest.approx(actual.latency_ms(99),
                                                     rel=0.6)

    def test_portability_reacts_to_platform_change(self, memcached_clone):
        # Profiled on A only; both actual and synthetic move the same
        # direction when run on B (Fig. 7's claim).
        deployment, synthetic, _report, load = memcached_clone
        cfg_b = ExperimentConfig(platform=PLATFORM_B, duration_s=0.03,
                                 seed=9)
        cfg_a = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                 seed=9)
        actual_a = run_experiment(deployment, load, cfg_a)
        actual_b = run_experiment(deployment, load, cfg_b)
        synth_a = run_experiment(synthetic, load, cfg_a)
        synth_b = run_experiment(synthetic, load, cfg_b)
        actual_delta = (actual_b.service("memcached").l2_miss_rate
                        - actual_a.service("memcached").l2_miss_rate)
        synth_delta = (synth_b.service("memcached").l2_miss_rate
                       - synth_a.service("memcached").l2_miss_rate)
        # Both react with the same sign (B's smaller L2 hurts both).
        assert actual_delta * synth_delta >= 0

    def test_load_reaction_without_reprofiling(self, memcached_clone):
        deployment, synthetic, _report, _load = memcached_clone
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=9)
        low = LoadSpec.open_loop(10000)
        high = LoadSpec.open_loop(250000)
        actual_low = run_experiment(deployment, low, vcfg)
        actual_high = run_experiment(deployment, high, vcfg)
        synth_low = run_experiment(synthetic, low, vcfg)
        synth_high = run_experiment(synthetic, high, vcfg)
        # Both show the low-load IPC dip (cold wakeups).
        assert (actual_low.service("memcached").ipc
                < actual_high.service("memcached").ipc)
        assert (synth_low.service("memcached").ipc
                < synth_high.service("memcached").ipc)


class TestNginxClone:
    def test_single_worker_skeleton_preserved(self):
        deployment = Deployment.single(build_nginx())
        load = LoadSpec.open_loop(20000)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=5)
        cloner = DittoCloner(fine_tune_tiers=False, budget=FAST_BUDGET)
        result = cloner.clone(CloneRequest(deployment=deployment, load=load,
                                           config=config))
        synthetic = result.synthetic
        skeleton = synthetic.services["nginx"].skeleton
        assert skeleton.worker_threads() == 1
        # Saturation behaviour carries over: one worker caps throughput.
        vcfg = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                seed=9)
        res = run_experiment(synthetic, LoadSpec.closed_loop(8), vcfg)
        assert res.throughput > 1000
