"""Unit tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    ConfigurationError,
    Histogram,
    OnlineStats,
    geometric_mean,
    percentile,
    relative_error,
    weighted_mean,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_p99_matches_numpy(self):
        samples = list(range(1000))
        assert percentile(samples, 99) == pytest.approx(np.percentile(samples, 99))

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_p0_is_min_p100_is_max(self, samples):
        assert percentile(samples, 0) == pytest.approx(min(samples))
        assert percentile(samples, 100) == pytest.approx(max(samples))


class TestWeightedMean:
    def test_uniform_weights_is_plain_mean(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(2.0)

    def test_weighting_pulls_toward_heavy_value(self):
        assert weighted_mean([0, 10], [1, 3]) == pytest.approx(7.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            weighted_mean([1], [1, 2])

    def test_zero_weights_raise(self):
        with pytest.raises(ConfigurationError):
            weighted_mean([1, 2], [0, 0])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestRelativeError:
    def test_exact_match_is_zero(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_ten_percent(self):
        assert relative_error(10.0, 11.0) == pytest.approx(0.1)

    def test_zero_actual_zero_synth(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_actual_nonzero_synth_is_inf(self):
        assert relative_error(0.0, 1.0) == math.inf

    @given(st.floats(0.1, 1e6), st.floats(0.1, 1e6))
    def test_nonnegative(self, a, s):
        assert relative_error(a, s) >= 0.0


class TestOnlineStats:
    def test_mean_and_variance_match_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        acc = OnlineStats()
        acc.extend(values)
        assert acc.mean == pytest.approx(np.mean(values))
        assert acc.variance == pytest.approx(np.var(values))
        assert acc.minimum == 1.0
        assert acc.maximum == 9.0

    def test_merge_equivalent_to_concatenation(self):
        left, right = OnlineStats(), OnlineStats()
        left.extend([1.0, 2.0])
        right.extend([3.0, 4.0, 5.0])
        merged = left.merge(right)
        direct = OnlineStats()
        direct.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)

    def test_merge_with_empty_is_identity(self):
        acc = OnlineStats()
        acc.extend([1.0, 2.0, 3.0])
        merged = acc.merge(OnlineStats())
        assert merged.mean == pytest.approx(acc.mean)
        merged2 = OnlineStats().merge(acc)
        assert merged2.mean == pytest.approx(acc.mean)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    def test_variance_never_negative(self, values):
        acc = OnlineStats()
        acc.extend(values)
        assert acc.variance >= -1e-9


class TestHistogram:
    def test_probability_and_total(self):
        hist = Histogram()
        hist.add("a", 3)
        hist.add("b", 1)
        assert hist.total == 4
        assert hist.probability("a") == pytest.approx(0.75)
        assert hist.probability("missing") == 0.0

    def test_normalized_sums_to_one(self):
        hist = Histogram()
        for key, n in [("x", 2), ("y", 5), ("z", 3)]:
            hist.add(key, n)
        assert sum(hist.normalized().values()) == pytest.approx(1.0)

    def test_sampling_respects_distribution(self):
        hist = Histogram()
        hist.add("common", 99)
        hist.add("rare", 1)
        rng = np.random.default_rng(0)
        samples = hist.sample(rng, size=2000)
        assert samples.count("common") > 1800

    def test_sample_empty_raises(self):
        with pytest.raises(ConfigurationError):
            Histogram().sample(np.random.default_rng(0))

    def test_most_common_ordering(self):
        hist = Histogram()
        hist.update({"a": 1, "b": 5, "c": 3})
        assert [k for k, _ in hist.most_common()] == ["b", "c", "a"]

    def test_tv_distance_identical_is_zero(self):
        hist = Histogram({"a": 1, "b": 2})
        assert hist.tv_distance(Histogram({"a": 2, "b": 4})) == pytest.approx(0.0)

    def test_tv_distance_disjoint_is_one(self):
        assert Histogram({"a": 1}).tv_distance(Histogram({"b": 1})) == pytest.approx(
            1.0
        )

    @given(
        st.dictionaries(st.text(min_size=1, max_size=3), st.integers(1, 100),
                        min_size=1, max_size=8),
        st.dictionaries(st.text(min_size=1, max_size=3), st.integers(1, 100),
                        min_size=1, max_size=8),
    )
    def test_tv_distance_is_a_metric_within_bounds(self, a, b):
        ha, hb = Histogram(dict(a)), Histogram(dict(b))
        d = ha.tv_distance(hb)
        assert 0.0 <= d <= 1.0 + 1e-12
        assert d == pytest.approx(hb.tv_distance(ha))
