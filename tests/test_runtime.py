"""Integration tests for the execution runtime."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import (
    build_memcached,
    build_mongodb,
    build_nginx,
    build_redis,
)
from repro.app.workloads.socialnet import social_network_deployment
from repro.app.stressors import stressor
from repro.hw import PLATFORM_A, PLATFORM_B
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment
from repro.util.errors import ConfigurationError


def _run(service_builder, load, duration=0.03, **cfg):
    spec = service_builder()
    deployment = Deployment.single(spec)
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=duration,
                              seed=3, **cfg)
    return spec.name, run_experiment(deployment, load, config)


class TestSingleTierRuns:
    def test_memcached_serves_all_requests(self):
        name, result = _run(build_memcached, LoadSpec.open_loop(40000))
        assert result.latency.completed == result.latency.issued
        assert result.latency.completed > 500
        metrics = result.service(name)
        assert metrics.requests == result.latency.completed
        assert 0.1 < metrics.ipc < 4.0

    def test_latency_grows_with_load(self):
        _, low = _run(build_memcached, LoadSpec.open_loop(20000))
        _, high = _run(build_memcached, LoadSpec.open_loop(200000))
        assert high.latency_ms(99) > low.latency_ms(99)

    def test_closed_loop_bounds_outstanding(self):
        name, result = _run(build_redis, LoadSpec.closed_loop(2))
        # 2 connections, 1 outstanding each: p99 stays near the mean.
        assert result.latency_ms(99) < 3 * result.latency_ms()

    def test_redis_single_core_saturation(self):
        # One event loop: adding connections beyond 1 barely helps.
        _, two = _run(build_redis, LoadSpec.closed_loop(2))
        _, sixteen = _run(build_redis, LoadSpec.closed_loop(16))
        assert sixteen.throughput < two.throughput * 3

    def test_mongodb_generates_disk_traffic(self):
        name, result = _run(build_mongodb, LoadSpec.closed_loop(4),
                            page_cache_bytes=4 * 1024**3)
        assert result.disk_bandwidth(name) > 1e6
        assert result.service(name).disk_read_bytes > 0

    def test_mongodb_page_cache_hit_when_big(self):
        # A page cache covering the dataset kills the disk traffic.
        name, result = _run(build_mongodb, LoadSpec.closed_loop(4),
                            page_cache_bytes=41 * 1024**3)
        assert result.disk_bandwidth(name) == 0.0

    def test_nginx_no_disk_traffic(self):
        # Docroot is page-cache resident by pre-warming.
        name, result = _run(build_nginx, LoadSpec.open_loop(10000))
        assert result.disk_bandwidth(name) == 0.0

    def test_network_bandwidth_scales_with_load(self):
        name, low = _run(build_memcached, LoadSpec.open_loop(20000))
        name, high = _run(build_memcached, LoadSpec.open_loop(80000))
        assert high.net_bandwidth(name) > 2 * low.net_bandwidth(name)

    def test_node_utilisation_reported(self):
        _, result = _run(build_memcached, LoadSpec.open_loop(40000))
        assert 0.0 < result.node_utilisation["node0"] <= 1.0

    def test_unknown_service_metrics_raise(self):
        _, result = _run(build_redis, LoadSpec.closed_loop(1))
        with pytest.raises(ConfigurationError):
            result.service("ghost")


class TestLoadDependentBehaviour:
    def test_cold_wakeups_dominate_at_low_load(self):
        name, low = _run(build_memcached, LoadSpec.open_loop(5000))
        name, high = _run(build_memcached, LoadSpec.open_loop(250000))
        low_m, high_m = low.service(name), high.service(name)
        cold_frac_low = low_m.cold_wakeups / max(1, low_m.requests)
        cold_frac_high = high_m.cold_wakeups / max(1, high_m.requests)
        assert cold_frac_low > cold_frac_high

    def test_low_load_lower_ipc_for_memcached(self):
        # Fig. 5: Memcached has low IPC at low load (cold i-cache, branch
        # mispredictions from sparse wakeups).
        name, low = _run(build_memcached, LoadSpec.open_loop(5000))
        name, high = _run(build_memcached, LoadSpec.open_loop(250000))
        assert low.service(name).ipc < high.service(name).ipc

    def test_l1i_missrate_higher_at_low_load(self):
        name, low = _run(build_memcached, LoadSpec.open_loop(5000))
        name, high = _run(build_memcached, LoadSpec.open_loop(250000))
        assert (low.service(name).l1i_miss_rate
                > high.service(name).l1i_miss_rate)


class TestCrossPlatform:
    def test_platform_b_higher_l2_missrate(self):
        # 256KB L2 (B) vs 1MB (A): parse/serialize working sets overflow.
        spec = build_memcached()
        dep = Deployment.single(spec)
        load = LoadSpec.open_loop(40000)
        res_a = run_experiment(dep, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.03, seed=3))
        res_b = run_experiment(dep, load, ExperimentConfig(
            platform=PLATFORM_B, duration_s=0.03, seed=3))
        assert (res_b.service("memcached").l2_miss_rate
                >= res_a.service("memcached").l2_miss_rate)

    def test_mongodb_slower_on_hdd_platform(self):
        spec = build_mongodb()
        dep = Deployment.single(spec)
        load = LoadSpec.closed_loop(4)
        res_a = run_experiment(dep, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.03, seed=3,
            page_cache_bytes=4 * 1024**3))
        res_b = run_experiment(dep, load, ExperimentConfig(
            platform=PLATFORM_B, duration_s=0.03, seed=3,
            page_cache_bytes=4 * 1024**3))
        assert res_b.latency_ms(50) > 3 * res_a.latency_ms(50)


class TestInterference:
    def test_llc_stressor_increases_misses(self):
        name, clean = _run(build_memcached, LoadSpec.open_loop(40000))
        name, noisy = _run(build_memcached, LoadSpec.open_loop(40000),
                           corunners=(stressor("llc"),))
        assert (noisy.service(name).llc_miss_rate
                > clean.service(name).llc_miss_rate)

    def test_ht_stressor_lowers_ipc(self):
        name, clean = _run(build_nginx, LoadSpec.open_loop(10000))
        name, noisy = _run(build_nginx, LoadSpec.open_loop(10000),
                           corunners=(stressor("ht"),))
        assert noisy.service(name).ipc < clean.service(name).ipc

    def test_net_stressor_raises_latency(self):
        name, clean = _run(build_memcached, LoadSpec.open_loop(100000))
        name, noisy = _run(build_memcached, LoadSpec.open_loop(100000),
                           corunners=(stressor("net"),))
        assert noisy.latency_ms(99) > clean.latency_ms(99)


class TestFrequencyAndCores:
    def test_lower_frequency_raises_latency(self):
        name, fast = _run(build_memcached, LoadSpec.open_loop(40000),
                          frequency_ghz=2.1)
        name, slow = _run(build_memcached, LoadSpec.open_loop(40000),
                          frequency_ghz=1.1)
        assert slow.latency_ms(99) > fast.latency_ms(99)

    def test_fewer_cores_raise_latency_at_high_load(self):
        name, many = _run(build_memcached, LoadSpec.open_loop(150000),
                          cores=16)
        name, few = _run(build_memcached, LoadSpec.open_loop(150000),
                         cores=4)
        assert few.latency_ms(99) >= many.latency_ms(99)


class TestSocialNetworkRuntime:
    def test_end_to_end_run(self):
        deployment = social_network_deployment()
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=3, trace_sample_rate=1.0)
        result = run_experiment(deployment, LoadSpec.open_loop(500), config)
        assert result.latency.completed > 10
        # Every tier on the read path saw traffic.
        for tier in ("frontend", "home-timeline-service",
                     "social-graph-service", "post-storage-service"):
            assert result.service(tier).requests > 0

    def test_social_graph_higher_ipc_than_text(self):
        # Paper: SocialGraphService has high IPC (small working set).
        deployment = social_network_deployment()
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.05,
                                  seed=3)
        result = run_experiment(deployment, LoadSpec.open_loop(800), config)
        sg = result.service("social-graph-service")
        assert sg.ipc > 0.5

    def test_compose_post_is_slowest_path(self):
        deployment = social_network_deployment()
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.08,
                                  seed=3)
        result = run_experiment(deployment, LoadSpec.open_loop(400), config)
        lat = result.latency.by_handler
        if "compose_post" in lat and "read_user_timeline" in lat:
            mean = lambda xs: sum(xs) / len(xs)
            assert mean(lat["compose_post"]) > mean(lat["read_user_timeline"])
