"""Parallel clone pipeline: determinism, the CloneResult API, validation."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached, social_network_deployment
from repro.core import (
    DEFAULT_MAX_TUNE_ITERATIONS,
    CloneResult,
    DittoCloner,
    derive_tier_seed,
)
from repro.core.cloner import CloneReport
from repro.core.finetune import fine_tune
from repro.core.pipeline import resolve_executor
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment
from repro.runtime import ExperimentConfig
from repro.util import ConfigurationError, stable_digest

FAST_BUDGET = ProfilingBudget(
    sampled_requests=8, max_accesses_per_spec=512,
    max_istream_per_block=2048, branch_outcomes_per_site=128,
    max_sites_per_population=8, dep_samples_per_block=48,
    profile_duration_s=0.015,
)
SOCIALNET_LOAD = LoadSpec.open_loop(800)
SOCIALNET_CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                    seed=5)


@pytest.fixture(scope="module")
def socialnet_profile():
    """One shared profiling session; executor runs re-clone from it."""
    deployment = social_network_deployment()
    profile = profile_deployment(deployment, SOCIALNET_LOAD,
                                 SOCIALNET_CONFIG, budget=FAST_BUDGET,
                                 seed=17)
    return deployment, profile


def _clone_with(executor, socialnet_profile):
    deployment, profile = socialnet_profile
    cloner = DittoCloner(fine_tune_tiers=True, max_tune_iterations=2,
                         budget=FAST_BUDGET, seed=17,
                         executor=executor, max_workers=4)
    return cloner.clone_from_profile(profile, deployment=deployment,
                                     profiling_config=SOCIALNET_CONFIG)


@pytest.fixture(scope="module")
def executor_clones(socialnet_profile):
    return {mode: _clone_with(mode, socialnet_profile)
            for mode in ("serial", "process", "thread")}


class TestExecutorDeterminism:
    """Acceptance: parallel == serial bit-for-bit on the social network."""

    def test_identical_features(self, executor_clones):
        digests = {
            mode: stable_digest(result.report.features)
            for mode, result in executor_clones.items()
        }
        assert len(set(digests.values())) == 1, digests

    def test_identical_tuned_knobs(self, executor_clones):
        digests = {
            mode: stable_digest({name: tuning.knobs for name, tuning
                                 in sorted(result.report.tuning.items())})
            for mode, result in executor_clones.items()
        }
        assert len(set(digests.values())) == 1, digests

    def test_identical_programs(self, executor_clones):
        digests = {
            mode: stable_digest({name: spec.program for name, spec
                                 in sorted(result.synthetic.services.items())})
            for mode, result in executor_clones.items()
        }
        assert len(set(digests.values())) == 1, digests

    def test_identical_whole_deployment(self, executor_clones):
        digests = {mode: stable_digest(result.synthetic)
                   for mode, result in executor_clones.items()}
        assert len(set(digests.values())) == 1, digests

    def test_every_tier_cloned(self, executor_clones, socialnet_profile):
        deployment, _profile = socialnet_profile
        for result in executor_clones.values():
            assert set(result.synthetic.services) == set(deployment.services)


class TestCloneReportTelemetry:
    def test_executor_mode_reported(self, executor_clones):
        for mode, result in executor_clones.items():
            assert result.report.executor == mode

    def test_per_tier_wall_clock(self, executor_clones, socialnet_profile):
        deployment, _profile = socialnet_profile
        for result in executor_clones.values():
            seconds = result.report.tier_seconds
            assert set(seconds) == set(deployment.services)
            assert all(s > 0 for s in seconds.values())

    def test_cache_counters_surface(self, executor_clones):
        for result in executor_clones.values():
            stats = result.report.cache_stats
            # Two tuning iterations per tier, every knob vector fresh:
            # all misses, and the counters made it back from the workers.
            assert stats.misses >= len(result.report.tuning)
            assert stats.lookups == stats.hits + stats.misses


class TestCloneResultApi:
    def test_unpacks_as_pair(self, executor_clones):
        result = executor_clones["serial"]
        synthetic, report = result
        assert synthetic is result.synthetic
        assert report is result.report
        assert isinstance(result, CloneResult)
        assert isinstance(report, CloneReport)

    def test_legacy_positional_clone_warns_but_works(self):
        deployment = Deployment.single(build_memcached())
        cloner = DittoCloner(fine_tune_tiers=False, budget=FAST_BUDGET)
        with pytest.warns(DeprecationWarning, match="CloneRequest"):
            result = cloner.clone(deployment, LoadSpec.open_loop(100000),
                                  SOCIALNET_CONFIG)
        assert isinstance(result, CloneResult)
        assert result.report.executor == "serial"  # single tier


class TestConstructionValidation:
    def test_positional_arguments_rejected(self):
        with pytest.raises(TypeError):
            DittoCloner(None)

    def test_max_tune_iterations_validated(self):
        for bad in (0, -3, 2.5, True):
            with pytest.raises(ConfigurationError):
                DittoCloner(max_tune_iterations=bad)

    def test_seed_validated(self):
        for bad in ("17", 1.5, None, False):
            with pytest.raises(ConfigurationError):
                DittoCloner(seed=bad)

    def test_executor_validated(self):
        with pytest.raises(ConfigurationError):
            DittoCloner(executor="fork-bomb")
        with pytest.raises(ConfigurationError):
            DittoCloner(max_workers=0)

    def test_defaults_unified_with_fine_tune(self):
        # The paper's "within ten iterations" guidance, one constant.
        assert DEFAULT_MAX_TUNE_ITERATIONS == 10
        assert (DittoCloner().max_tune_iterations
                == DEFAULT_MAX_TUNE_ITERATIONS)
        assert (fine_tune.__defaults__[2]  # max_iterations
                == DEFAULT_MAX_TUNE_ITERATIONS)


class TestExecutorResolution:
    def test_explicit_modes_honoured(self):
        for mode in ("process", "thread", "serial"):
            assert resolve_executor(mode, n_tasks=8) == mode

    def test_auto_serial_for_single_task(self):
        assert resolve_executor("auto", n_tasks=1) == "serial"

    def test_auto_serial_for_single_worker(self):
        assert resolve_executor("auto", n_tasks=8, max_workers=1) == "serial"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor("gpu", n_tasks=2)

    def test_tier_seed_derivation_stable_and_distinct(self):
        a = derive_tier_seed(17, "frontend", "bodygen")
        assert a == derive_tier_seed(17, "frontend", "bodygen")
        assert a != derive_tier_seed(17, "frontend", "finetune")
        assert a != derive_tier_seed(17, "post-storage", "bodygen")
        assert a != derive_tier_seed(18, "frontend", "bodygen")
