"""Unit tests for load generators and distributions."""

import numpy as np
import pytest

from repro.loadgen import (
    ClosedLoopGenerator,
    ConstantInterarrival,
    ExponentialInterarrival,
    LoadSpec,
    OpenLoopGenerator,
    UniformKeys,
    ZipfKeys,
)
from repro.sim import Environment
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream
from repro.util.stats import Histogram


def _echo_submit(env, service_time=0.001):
    """A trivial backend that responds after a fixed service time."""
    def submit(handler):
        response = env.event()

        def responder():
            yield env.timeout(service_time)
            response.succeed(env.now)

        env.process(responder())
        return response

    return submit


class TestDistributions:
    def test_exponential_mean_rate(self):
        rng = np.random.default_rng(0)
        gen = ExponentialInterarrival(1000.0, rng)
        gaps = [gen.next_gap() for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.1)

    def test_constant_gap(self):
        gen = ConstantInterarrival(100.0)
        assert gen.next_gap() == pytest.approx(0.01)

    def test_uniform_keys_cover_space(self):
        rng = np.random.default_rng(1)
        gen = UniformKeys(10, rng)
        seen = {gen.next_key() for _ in range(500)}
        assert seen == set(range(10))

    def test_zipf_head_heavier_than_tail(self):
        rng = np.random.default_rng(2)
        gen = ZipfKeys(1000, rng, s=0.99)
        draws = [gen.next_key() for _ in range(5000)]
        head = sum(1 for key in draws if key < 10)
        tail = sum(1 for key in draws if key >= 990)
        assert head > 10 * max(1, tail)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            ExponentialInterarrival(0.0, rng)
        with pytest.raises(ConfigurationError):
            UniformKeys(0, rng)
        with pytest.raises(ConfigurationError):
            ZipfKeys(10, rng, s=0.0)


class TestLoadSpec:
    def test_open_loop_factory(self):
        spec = LoadSpec.open_loop(5000)
        assert spec.kind == "open" and spec.qps == 5000

    def test_closed_loop_factory(self):
        spec = LoadSpec.closed_loop(8, think_time_s=0.01)
        assert spec.kind == "closed" and spec.connections == 8

    def test_invalid_specs(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(kind="open", qps=0)
        with pytest.raises(ConfigurationError):
            LoadSpec(kind="closed", connections=0)
        with pytest.raises(ConfigurationError):
            LoadSpec(kind="banana")


class TestOpenLoopGenerator:
    def test_injects_at_target_rate(self):
        env = Environment()
        gen = OpenLoopGenerator(
            env, _echo_submit(env), Histogram({"get": 1.0}),
            qps=10000, duration_s=0.1, rng_stream=RngStream(1),
        )
        gen.start()
        env.run()
        assert gen.recorder.issued == pytest.approx(1000, rel=0.15)
        assert gen.recorder.completed == gen.recorder.issued

    def test_open_loop_does_not_wait_for_responses(self):
        # Slow backend: issued count unaffected by service time.
        env = Environment()
        gen = OpenLoopGenerator(
            env, _echo_submit(env, service_time=10.0),
            Histogram({"get": 1.0}), qps=1000, duration_s=0.05,
            rng_stream=RngStream(2),
        )
        gen.start()
        env.run()
        assert gen.recorder.issued > 20

    def test_mix_respected(self):
        env = Environment()
        gen = OpenLoopGenerator(
            env, _echo_submit(env), Histogram({"get": 0.9, "set": 0.1}),
            qps=20000, duration_s=0.1, rng_stream=RngStream(3),
        )
        gen.start()
        env.run()
        gets = len(gen.recorder.by_handler.get("get", []))
        sets = len(gen.recorder.by_handler.get("set", []))
        assert gets > 5 * max(1, sets)

    def test_latency_recorded(self):
        env = Environment()
        gen = OpenLoopGenerator(
            env, _echo_submit(env, service_time=0.002),
            Histogram({"get": 1.0}), qps=5000, duration_s=0.05,
            rng_stream=RngStream(4),
        )
        gen.start()
        env.run()
        assert gen.recorder.mean == pytest.approx(0.002, rel=0.05)
        assert gen.recorder.percentile(99) >= gen.recorder.percentile(50)

    def test_deterministic_mode(self):
        env = Environment()
        gen = OpenLoopGenerator(
            env, _echo_submit(env), Histogram({"get": 1.0}),
            qps=1000, duration_s=0.05, rng_stream=RngStream(5),
            deterministic=True,
        )
        gen.start()
        env.run()
        assert gen.recorder.issued in (49, 50)


class TestClosedLoopGenerator:
    def test_one_outstanding_per_connection(self):
        env = Environment()
        gen = ClosedLoopGenerator(
            env, _echo_submit(env, service_time=0.01),
            Histogram({"get": 1.0}), connections=2, duration_s=0.1,
            rng_stream=RngStream(6),
        )
        gen.start()
        env.run()
        # 2 connections * (0.1s / 0.01s) = ~20 requests.
        assert gen.recorder.completed == pytest.approx(20, abs=4)

    def test_think_time_throttles(self):
        env = Environment()
        gen = ClosedLoopGenerator(
            env, _echo_submit(env, service_time=0.001),
            Histogram({"get": 1.0}), connections=1, duration_s=0.1,
            rng_stream=RngStream(7), think_time_s=0.01,
        )
        gen.start()
        env.run()
        assert gen.recorder.completed <= 11

    def test_empty_recorder_mean_rejected(self):
        from repro.loadgen import LatencyRecorder
        with pytest.raises(ConfigurationError):
            LatencyRecorder().mean
