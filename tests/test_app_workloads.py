"""Unit tests for the six workload models (§6.1.2 configurations)."""

import pytest

from repro.app.service import Deployment
from repro.app.skeleton import ServerNetworkModel
from repro.app.stressors import STRESSORS, interference_suite, stressor
from repro.app.workloads import (
    build_memcached,
    build_mongodb,
    build_nginx,
    build_redis,
    build_social_network,
    social_network_deployment,
)
from repro.isa.instructions import iform
from repro.util.errors import ConfigurationError


class TestMemcached:
    def test_four_workers_by_default(self):
        spec = build_memcached()
        assert spec.skeleton.worker_threads() == 4

    def test_get_dominated_mix(self):
        spec = build_memcached()
        assert spec.request_mix["get"] > spec.request_mix["set"]

    def test_epoll_server(self):
        assert (build_memcached().skeleton.server_model
                is ServerNetworkModel.IO_MULTIPLEXING)

    def test_store_sized_from_paper_config(self):
        # 10K items x 4KB values: resident footprint slightly above 40MB.
        spec = build_memcached()
        assert 40e6 < spec.program.resident_bytes < 60e6

    def test_get_handler_sends_value_sized_response(self):
        spec = build_memcached()
        sends = [inv for inv in spec.program.handler("get").syscalls
                 if inv.spec.device == "net_tx"]
        assert sends
        assert sends[0].nbytes >= 4096


class TestNginx:
    def test_single_worker(self):
        assert build_nginx().skeleton.worker_threads() == 1

    def test_serves_from_docroot_file(self):
        spec = build_nginx()
        assert "docroot" in spec.files
        preads = [inv for inv in spec.program.handler("http_get").syscalls
                  if inv.name == "pread"]
        assert preads and preads[0].file == "docroot"

    def test_large_hot_code(self):
        # nginx traverses more module code than memcached's hot path.
        assert (build_nginx().program.hot_code_bytes
                > build_memcached().program.hot_code_bytes)


class TestMongoDB:
    def test_thread_per_connection(self):
        spec = build_mongodb()
        workers = [cls for cls in spec.skeleton.thread_classes
                   if cls.role == "worker"]
        assert workers[0].scales_with_connections

    def test_blocking_server_model(self):
        assert (build_mongodb().skeleton.server_model
                is ServerNetworkModel.BLOCKING)

    def test_dataset_is_40gb(self):
        spec = build_mongodb()
        assert spec.files["collection"] == pytest.approx(40 * 1024**3)

    def test_find_reads_pages_from_collection(self):
        spec = build_mongodb()
        preads = [inv for inv in spec.program.handler("find").syscalls
                  if inv.name == "pread"]
        assert len(preads) >= 2
        assert all(p.file == "collection" for p in preads)

    def test_checksum_blocks_use_crc32(self):
        spec = build_mongodb()
        blocks = spec.program.handler("find").compute_blocks
        crc_blocks = [b for b in blocks if "CRC32_r64_r64" in b.iform_counts]
        assert crc_blocks


class TestRedis:
    def test_single_threaded_event_loop(self):
        assert build_redis().skeleton.worker_threads() == 1

    def test_no_disk_files(self):
        # Persistence disabled (§6.1.2).
        assert not build_redis().files

    def test_100k_record_store(self):
        spec = build_redis()
        assert 100e6 < spec.program.resident_bytes < 140e6


class TestSocialNetwork:
    def test_fourteen_tiers(self):
        services = build_social_network()
        assert len(services) == 14
        assert "text-service" in services
        assert "social-graph-service" in services

    def test_deployment_is_a_dag(self):
        deployment = social_network_deployment()
        assert deployment.entry_service == "frontend"
        order = deployment.tier_order()
        assert order[0] == "frontend"
        assert set(order) == set(deployment.services)

    def test_compose_path_reaches_text_service(self):
        services = build_social_network()
        compose = services["compose-post-service"]
        targets = compose.program.downstream_services()
        assert "text-service" in targets
        assert "post-storage-service" in targets

    def test_text_service_fans_out_in_parallel(self):
        services = build_social_network()
        rpcs = services["text-service"].program.handler("process_text").rpcs
        groups = {rpc.parallel_group for rpc in rpcs}
        assert groups == {1}

    def test_social_graph_working_set_fits_llc(self):
        # The paper: SocialGraphService has high IPC because Reed98 is tiny.
        from repro.app.workloads.socialnet import GRAPH_BYTES
        from repro.hw import PLATFORM_A
        assert GRAPH_BYTES < PLATFORM_A.llc.size_bytes

    def test_cluster_placement(self):
        deployment = social_network_deployment(
            placement={"frontend": "node1"})
        assert deployment.node_of("frontend") == "node1"
        assert deployment.node_of("text-service") == "node0"

    def test_cycle_detection(self):
        services = build_social_network()
        # Artificially make a cycle by giving a leaf a call to frontend.
        from repro.app.program import Handler, RpcOp
        from repro.app.service import Placement
        leaf = services["unique-id-service"]
        bad_handler = Handler("gen", tuple(
            list(leaf.program.handler("gen").ops)
            + [RpcOp("compose-post-service", 10, 10, handler="compose")]
        ))
        from dataclasses import replace
        from repro.app.program import Program
        bad_program = Program(
            handlers={"gen": bad_handler},
            hot_code_bytes=leaf.program.hot_code_bytes,
            resident_bytes=leaf.program.resident_bytes,
        )
        services["unique-id-service"] = replace(leaf, program=bad_program)
        with pytest.raises(ConfigurationError):
            Deployment(
                services=services,
                placements=[Placement(name, "n0") for name in services],
                entry_service="frontend",
            )


class TestStressors:
    def test_suite_matches_fig10(self):
        assert interference_suite() == ["ht", "l1d", "l2", "llc", "net"]

    def test_all_builders_produce_corunners(self):
        for name in STRESSORS:
            runner = stressor(name)
            assert runner.level == name

    def test_cache_stressors_are_same_core(self):
        assert stressor("l1d").same_physical_core
        assert stressor("l2").same_physical_core
        assert not stressor("llc").same_physical_core

    def test_unknown_stressor_rejected(self):
        with pytest.raises(ConfigurationError):
            stressor("gpu")


class TestWorkloadBlockValidity:
    @pytest.mark.parametrize("builder", [
        build_memcached, build_nginx, build_mongodb, build_redis,
    ])
    def test_all_iforms_exist(self, builder):
        spec = builder()
        for block in spec.program.all_blocks():
            for name in block.iform_counts:
                iform(name)

    def test_socialnet_blocks_valid(self):
        for spec in build_social_network().values():
            for block in spec.program.all_blocks():
                for name in block.iform_counts:
                    iform(name)
