"""Tests for the experiment driver: config plumbing and invariants."""

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached, build_nginx
from repro.app.workloads.socialnet import social_network_deployment
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment
from repro.runtime.experiment import sweep_load
from repro.tracing import Tracer
from repro.util.errors import ConfigurationError, SimBudgetExceededError
from repro.util.spec_hash import stable_digest


class TestExperimentConfig:
    def test_duration_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.0)

    def test_watchdog_budgets_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.01,
                             max_sim_events=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.01,
                             max_stalled_events=0)
        with pytest.raises(ConfigurationError):
            # A deadline shorter than the run itself always trips.
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.01,
                             sim_deadline_s=0.005)


class TestSimWatchdogs:
    def test_tiny_event_budget_trips(self):
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.01,
                                  seed=7, max_sim_events=50)
        with pytest.raises(SimBudgetExceededError) as excinfo:
            run_experiment(Deployment.single(build_memcached()),
                           LoadSpec.open_loop(40_000), config)
        assert excinfo.value.budget == "max_events"

    def test_generous_budgets_leave_results_identical(self):
        deployment = Deployment.single(build_memcached())
        load = LoadSpec.open_loop(40_000)
        plain = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7))
        guarded = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7,
            max_sim_events=50_000_000, sim_deadline_s=10.0,
            max_stalled_events=1_000_000))
        assert stable_digest(
            {n: m.snapshot() for n, m in plain.services.items()}
        ) == stable_digest(
            {n: m.snapshot() for n, m in guarded.services.items()})
        assert plain.latency.completed == guarded.latency.completed


class TestDeterminism:
    def test_same_seed_same_result(self):
        deployment = Deployment.single(build_memcached())
        load = LoadSpec.open_loop(40000)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=7)
        first = run_experiment(deployment, load, config)
        second = run_experiment(deployment, load, config)
        assert first.latency.completed == second.latency.completed
        assert first.latency_ms(99) == pytest.approx(second.latency_ms(99))
        assert first.service("memcached").timing.cycles == pytest.approx(
            second.service("memcached").timing.cycles)

    def test_different_seed_different_arrivals(self):
        deployment = Deployment.single(build_memcached())
        load = LoadSpec.open_loop(40000)
        a = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.02, seed=1))
        b = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.02, seed=2))
        assert a.latency.completed != b.latency.completed


class TestAccountingInvariants:
    def test_all_issued_requests_complete(self):
        deployment = Deployment.single(build_nginx())
        result = run_experiment(
            deployment, LoadSpec.open_loop(15000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=3))
        assert result.latency.completed == result.latency.issued

    def test_entry_requests_match_recorder(self):
        deployment = Deployment.single(build_nginx())
        result = run_experiment(
            deployment, LoadSpec.open_loop(15000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=3))
        assert (result.service("nginx").requests
                == result.latency.completed)

    def test_downstream_requests_at_least_fanout(self):
        deployment = social_network_deployment()
        result = run_experiment(
            deployment, LoadSpec.open_loop(600),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=3))
        frontend = result.service("frontend").requests
        # Every home-timeline read fans into the social graph; composes
        # add more via write-home-timeline.
        assert result.service("social-graph-service").requests > 0
        assert result.service("frontend").requests >= frontend

    def test_latency_percentiles_ordered(self):
        deployment = Deployment.single(build_memcached())
        result = run_experiment(
            deployment, LoadSpec.open_loop(120000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.03, seed=3))
        assert (result.latency_ms(50) <= result.latency_ms(95)
                <= result.latency_ms(99))

    def test_utilisation_bounded(self):
        deployment = Deployment.single(build_memcached())
        result = run_experiment(
            deployment, LoadSpec.open_loop(400000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=3))
        for value in result.node_utilisation.values():
            assert 0.0 <= value <= 1.0


class TestTracerPlumbing:
    def test_supplied_tracer_collects_spans(self):
        tracer = Tracer(sample_rate=1.0)
        deployment = social_network_deployment()
        run_experiment(
            deployment, LoadSpec.open_loop(400),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=3,
                             tracer=tracer))
        assert tracer.finished_spans()
        services = {span.service for span in tracer.finished_spans()}
        assert "frontend" in services

    def test_default_sampling_keeps_memory_bounded(self):
        deployment = Deployment.single(build_memcached())
        tracer = Tracer(sample_rate=0.05)
        result = run_experiment(
            deployment, LoadSpec.open_loop(100000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=3,
                             tracer=tracer))
        assert len(tracer.spans) < result.latency.completed


class TestSweepLoad:
    def test_returns_one_result_per_point(self):
        deployment = Deployment.single(build_nginx())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015,
                                  seed=3)
        loads = [LoadSpec.open_loop(q) for q in (4000, 12000, 24000)]
        results = sweep_load(deployment, loads, config)
        assert len(results) == 3
        throughputs = [r.throughput for r in results]
        assert throughputs[0] < throughputs[-1]
