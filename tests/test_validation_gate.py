"""Fidelity gates, remediation, and the bundle-validation CLI."""

import json

import pytest

from repro import (
    CloneRequest,
    Deployment,
    DittoCloner,
    ExperimentConfig,
    LoadSpec,
    PLATFORM_A,
    build_memcached,
    run_experiment,
)
from repro.core.body_gen import GeneratorConfig, TuningKnobs
from repro.core.bundle import save_bundle
from repro.hw.core import BlockTiming
from repro.runtime.metrics import ServiceMetrics
from repro.util.errors import ConfigurationError, FidelityGateError
from repro.validation import FidelityGate, RemediationPolicy
from repro.validation.__main__ import main as validation_main
from repro.validation.gate import MetricTolerance

CONFIG = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02)
LOAD = LoadSpec.open_loop(20_000)


@pytest.fixture(scope="module")
def original():
    return Deployment.single(build_memcached())


@pytest.fixture(scope="module")
def gated_clone(original):
    cloner = DittoCloner(validate=True, executor="serial",
                         max_tune_iterations=3)
    return cloner.clone(CloneRequest(deployment=original, load=LOAD,
                                     config=CONFIG))


def _counters(ipc=1.0, branch=0.02, l1i=0.1, l1d=0.1, l2=0.2, llc=0.3):
    cycles = 1e9
    instructions = ipc * cycles
    branches = instructions * 0.1
    l1i_accesses = instructions / 4.0
    l1d_accesses = instructions * 0.3
    l2_accesses = l1d_accesses * l1d
    llc_accesses = l2_accesses * l2
    metrics = ServiceMetrics()
    metrics.absorb(BlockTiming(
        cycles=cycles, instructions=instructions,
        uops=instructions * 1.1, branches=branches,
        branch_mispredictions=branches * branch,
        l1i_accesses=l1i_accesses, l1i_misses=l1i_accesses * l1i,
        l1d_accesses=l1d_accesses, l1d_misses=l1d_accesses * l1d,
        l2_accesses=l2_accesses, l2_misses=l2_accesses * l2,
        llc_accesses=llc_accesses, llc_misses=llc_accesses * llc,
    ))
    return metrics


class TestFidelityGate:
    def test_identical_runs_pass_with_zero_error(self, original):
        result = run_experiment(original, LOAD, CONFIG)
        report = FidelityGate().compare_runs(result, result)
        assert report.passed
        assert report.mean_error == 0.0
        assert all(check.error == 0.0 for check in report.checks)

    def test_gated_cloner_attaches_passing_report(self, gated_clone):
        fidelity = gated_clone.report.fidelity
        assert fidelity is not None
        assert fidelity.passed
        assert fidelity.mode == "runs"
        assert gated_clone.report.remediation == []
        checked = {check.metric for check in fidelity.checks}
        assert {"ipc", "l1i", "l1d", "llc", "branch_mpki"} <= checked
        assert "error_rate" in checked

    def test_mistuned_clone_fails_per_metric(self, original):
        # A clone generated with deliberately wrong knobs (8x data
        # working sets, 5x branch transition rate) must fail the gate,
        # with the failures attributed to the distorted metrics.
        bad_knobs = TuningKnobs(dmem_scale=8.0, big_wset_scale=8.0,
                                transition_scale=5.0)
        cloner = DittoCloner(
            fine_tune_tiers=False, executor="serial",
            generator_config=GeneratorConfig(knobs=bad_knobs))
        mistuned = cloner.clone(CloneRequest(deployment=original,
                                             load=LOAD, config=CONFIG))
        baseline = run_experiment(original, LOAD, CONFIG)
        distorted = run_experiment(mistuned.synthetic, LOAD, CONFIG)
        report = FidelityGate().compare_runs(baseline, distorted)
        assert not report.passed
        failing = {check.metric for check in report.failures()}
        assert failing & {"l1d", "l2", "llc", "branch_mpki", "ipc"}

    def test_report_round_trips_to_dict(self, gated_clone):
        document = gated_clone.report.fidelity.to_dict()
        assert document["format"] == "ditto-fidelity-report/1"
        assert document["passed"] is True
        assert len(document["checks"]) == \
            len(gated_clone.report.fidelity.checks)
        text = gated_clone.report.fidelity.summary()
        assert "PASS" in text and "ipc" in text

    def test_tolerance_overrides(self):
        gate = FidelityGate({"ipc": 0.5,
                             "llc": MetricTolerance("llc", relative=0.9)})
        assert gate.tolerances["ipc"].relative == 0.5
        assert gate.tolerances["llc"].relative == 0.9
        with pytest.raises(ConfigurationError):
            FidelityGate({"ipc": "loose"})
        with pytest.raises(ConfigurationError):
            FidelityGate(metrics=("ipc", "no_such_metric"))
        with pytest.raises(ConfigurationError):
            FidelityGate(latency_quantiles=(1.5,))
        with pytest.raises(ConfigurationError):
            MetricTolerance("ipc", relative=-0.1)

    def test_absolute_slack_floors_near_zero_metrics(self):
        gate = FidelityGate()
        target = _counters(l2=1e-4)
        measured = _counters(l2=3e-4)  # 200% relative, tiny absolute
        report = gate.compare_counters("tier", target, measured)
        l2 = next(c for c in report.checks if c.metric == "l2")
        assert l2.passed  # absolute floor absorbs the relative blow-up

    def test_counters_mode_flags_real_drift(self):
        gate = FidelityGate()
        report = gate.compare_counters(
            "tier", _counters(ipc=1.0, l1d=0.10),
            _counters(ipc=0.5, l1d=0.25))
        failing = {check.metric for check in report.failures()}
        assert "ipc" in failing and "l1d" in failing
        assert report.mode == "counters"


class TestRemediation:
    def test_policy_ladder_is_deterministic_and_escalating(self):
        policy = RemediationPolicy(max_attempts=2, widen_tune_factor=2.0)
        one = policy.plan(1, reason="gate_failure", base_seed=17,
                          base_tune_iterations=10, base_executor="auto")
        two = policy.plan(2, reason="gate_failure", base_seed=17,
                          base_tune_iterations=10, base_executor="auto")
        again = policy.plan(1, reason="gate_failure", base_seed=17,
                            base_tune_iterations=10, base_executor="auto")
        assert one == again  # same failure climbs the same ladder
        assert one.seed != 17 and two.seed != one.seed
        assert one.max_tune_iterations == 20
        assert two.max_tune_iterations == 40
        assert one.executor == "thread"
        assert two.executor == "serial"
        assert policy.plan(3, reason="gate_failure", base_seed=17,
                           base_tune_iterations=10,
                           base_executor="auto") is None

    def test_policy_axes_can_be_disabled(self):
        policy = RemediationPolicy(reseed=False, degrade_executor=False,
                                   widen_tune_factor=1.0)
        step = policy.plan(1, reason="sim_budget", base_seed=17,
                           base_tune_iterations=10, base_executor="process")
        assert step.seed == 17
        assert step.executor == "process"
        assert step.max_tune_iterations == 11  # still nudged upward

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RemediationPolicy(max_attempts=-1)
        with pytest.raises(ConfigurationError):
            RemediationPolicy(widen_tune_factor=0.5)
        with pytest.raises(ConfigurationError):
            DittoCloner(validate=True, remediation="retry-harder")
        with pytest.raises(ConfigurationError):
            DittoCloner(validate="strict")

    def test_unsatisfiable_gate_exhausts_ladder(self, original):
        # Zero-tolerance everywhere: no clone can pass, so the cloner
        # must climb every remediation rung, then surface the failing
        # report AND the clone itself.
        impossible = FidelityGate({
            name: MetricTolerance(name, relative=1e-12)
            for name in ("ipc", "l1i", "l1d", "l2", "llc", "branch_mpki",
                         "branch", "p50_latency", "p99_latency",
                         "error_rate")
        })
        cloner = DittoCloner(
            validate=impossible, fine_tune_tiers=False, executor="serial",
            remediation=RemediationPolicy(max_attempts=1))
        with pytest.raises(FidelityGateError) as excinfo:
            cloner.clone(CloneRequest(deployment=original, load=LOAD,
                                      config=CONFIG))
        error = excinfo.value
        assert error.attempts == 2  # original + one remediation rung
        assert error.report is not None and not error.report.passed
        assert error.result is not None  # the clone is salvageable
        steps = error.result.report.remediation
        assert len(steps) == 1
        assert steps[0].reason == "gate_failure"
        assert steps[0].executor == "serial"


class TestValidationCLI:
    @pytest.fixture(scope="class")
    def bundle(self, gated_clone, tmp_path_factory):
        path = tmp_path_factory.mktemp("bundles") / "clone.json"
        save_bundle(
            gated_clone.report.features, path, entry_service="memcached",
            tuned_knobs={name: result.knobs for name, result
                         in gated_clone.report.tuning.items()})
        return path

    def test_tuned_bundle_passes(self, bundle, tmp_path):
        report_path = tmp_path / "report.json"
        code = validation_main([str(bundle), "--duration", "0.2",
                                "--json", str(report_path), "--quiet"])
        assert code == 0
        document = json.loads(report_path.read_text())
        assert document["passed"] is True
        assert document["platform"] == "A"
        assert len(document["tiers"]) == 1
        assert document["tiers"][0]["mode"] == "counters"

    def test_mistuned_bundle_fails(self, gated_clone, tmp_path):
        path = tmp_path / "mistuned.json"
        save_bundle(
            gated_clone.report.features, path, entry_service="memcached",
            tuned_knobs={"memcached": TuningKnobs(dmem_scale=8.0,
                                                  big_wset_scale=8.0,
                                                  transition_scale=5.0)})
        report_path = tmp_path / "report.json"
        code = validation_main([str(path), "--duration", "0.2",
                                "--json", str(report_path), "--quiet"])
        assert code == 1
        document = json.loads(report_path.read_text())
        assert document["passed"] is False

    def test_tampered_bundle_quarantined(self, bundle, tmp_path):
        target = tmp_path / "tampered.json"
        document = json.loads(bundle.read_text())
        document["entry_service"] = "postgres"  # silent edit
        target.write_text(json.dumps(document))
        code = validation_main([str(target), "--quiet"])
        assert code == 2
        assert not target.exists()
        assert (tmp_path / "tampered.json.quarantined").exists()

    def test_truncated_bundle_quarantined(self, bundle, tmp_path):
        target = tmp_path / "truncated.json"
        target.write_text(bundle.read_text()[:100])
        code = validation_main([str(target), "--quiet"])
        assert code == 2
        assert (tmp_path / "truncated.json.quarantined").exists()

    def test_tolerance_override_flag(self, bundle):
        # An absurdly strict CLI override must flip the verdict.
        code = validation_main([str(bundle), "--duration", "0.2",
                                "--tolerance", "ipc=1e-12", "--quiet"])
        assert code == 1
