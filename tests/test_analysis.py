"""Unit tests for tree-edit distance, clustering, and error metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CallTree,
    ErrorReport,
    agglomerative_cluster,
    hierarchical_feature_clusters,
    tree_edit_distance,
)
from repro.analysis.treedit import normalized_tree_distance
from repro.analysis.clustering import euclidean
from repro.util.errors import ConfigurationError


def _tree(spec):
    return CallTree.from_nested(spec)


class TestTreeEditDistance:
    def test_identical_trees_zero(self):
        a = _tree(("loop", [("recv", []), ("send", [])]))
        b = _tree(("loop", [("recv", []), ("send", [])]))
        assert tree_edit_distance(a, b) == 0

    def test_single_relabel(self):
        a = _tree(("loop", [("recv", [])]))
        b = _tree(("loop", [("read", [])]))
        assert tree_edit_distance(a, b) == 1

    def test_single_insert(self):
        a = _tree(("loop", [("recv", [])]))
        b = _tree(("loop", [("recv", []), ("send", [])]))
        assert tree_edit_distance(a, b) == 1

    def test_symmetry(self):
        a = _tree(("loop", [("recv", []), ("hash", [("probe", [])])]))
        b = _tree(("loop", [("read", []), ("send", [])]))
        assert tree_edit_distance(a, b) == tree_edit_distance(b, a)

    def test_disjoint_trees_cost_bounded(self):
        a = _tree(("x", [("y", [])]))
        b = _tree(("p", [("q", []), ("r", [])]))
        d = tree_edit_distance(a, b)
        assert 0 < d <= a.size() + b.size()

    def test_size_and_from_nested(self):
        tree = _tree(("a", [("b", [("c", [])]), ("d", [])]))
        assert tree.size() == 4

    def test_normalized_distance_in_unit_interval(self):
        a = _tree(("loop", [("recv", [])]))
        b = _tree(("main", [("accept", []), ("epoll_ctl", [])]))
        assert 0.0 <= normalized_tree_distance(a, b) <= 1.0

    def test_none_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_edit_distance(None, _tree("x"))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_distance_nonnegative_chains(self, n, m):
        def chain(k, label):
            spec = (f"{label}{k - 1}", [])
            for i in range(k - 2, -1, -1):
                spec = (f"{label}{i}", [spec])
            return _tree(spec)

        a, b = chain(n, "a"), chain(m, "b")
        d = tree_edit_distance(a, b)
        assert d >= abs(n - m)


class TestAgglomerativeClustering:
    def test_two_obvious_groups(self):
        items = [0.0, 0.1, 0.2, 10.0, 10.1]
        clusters = agglomerative_cluster(
            items, distance=lambda a, b: abs(a - b), threshold=1.0)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [2, 3]

    def test_threshold_zero_keeps_singletons(self):
        items = [1.0, 2.0, 3.0]
        clusters = agglomerative_cluster(
            items, distance=lambda a, b: abs(a - b), threshold=0.0)
        assert len(clusters) == 3

    def test_huge_threshold_merges_all(self):
        items = [1.0, 5.0, 9.0]
        clusters = agglomerative_cluster(
            items, distance=lambda a, b: abs(a - b), threshold=100.0)
        assert len(clusters) == 1

    def test_empty_input(self):
        assert agglomerative_cluster([], lambda a, b: 0.0, 1.0) == []

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            agglomerative_cluster([1, 2], lambda a, b: -1.0, 1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            agglomerative_cluster([1], lambda a, b: 0.0, -1.0)


class TestFeatureClusters:
    def test_identical_vectors_cluster(self):
        clusters = hierarchical_feature_clusters(
            ["a", "b", "c"],
            [[1.0, 0.0], [1.0, 0.0], [0.0, 5.0]],
            threshold=0.5,
        )
        grouped = {frozenset(c) for c in clusters}
        assert frozenset({"a", "b"}) in grouped

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            hierarchical_feature_clusters(["a"], [], 1.0)

    def test_euclidean(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)
        with pytest.raises(ConfigurationError):
            euclidean([1], [1, 2])

    def test_isa_clusters_separate_crc_from_moves(self):
        from repro.isa.instructions import catalog, feature_vector, iform
        names = ["ADD_r64_r64", "SUB_r64_r64", "CRC32_r64_r64", "DIV_r64"]
        vectors = [feature_vector(iform(n)) for n in names]
        clusters = hierarchical_feature_clusters(names, vectors, 1.0)
        cluster_of = {n: i for i, c in enumerate(clusters) for n in c}
        assert cluster_of["ADD_r64_r64"] == cluster_of["SUB_r64_r64"]
        assert cluster_of["CRC32_r64_r64"] != cluster_of["ADD_r64_r64"]
        assert cluster_of["DIV_r64"] != cluster_of["ADD_r64_r64"]


class TestErrorReport:
    def test_mean_and_max(self):
        report = ErrorReport()
        report.add("ipc", 1.0, 1.1)
        report.add("l1d", 0.2, 0.1)
        assert report.mean_error() == pytest.approx((0.1 + 0.5) / 2)
        assert report.max_error() == pytest.approx(0.5)

    def test_error_of_named_metric(self):
        report = ErrorReport()
        report.add("ipc", 2.0, 1.0)
        assert report.error_of("ipc") == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            report.error_of("nope")

    def test_infinite_errors_excluded_from_mean(self):
        report = ErrorReport()
        report.add("a", 0.0, 1.0)   # infinite
        report.add("b", 1.0, 1.0)
        assert report.mean_error() == 0.0

    def test_table_renders(self):
        report = ErrorReport()
        report.add("ipc", 1.0, 0.9)
        text = report.table()
        assert "ipc" in text and "10.0%" in text

    def test_empty_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            ErrorReport().mean_error()
