"""Unit tests for pricing keys, the block pricer, and service metrics."""

import pytest

from repro.hw import PLATFORM_A, PLATFORM_B, BlockSpec
from repro.hw.core import BlockTiming
from repro.hw.ir import DependencyProfile
from repro.hw.topdown import TopDownBreakdown
from repro.runtime import BlockPricer, PricingKey, ServiceMetrics
from repro.util.errors import ConfigurationError


def _key(**overrides):
    defaults = dict(
        cold=False, concurrency=1, smt_contention=1.0,
        cache_factors=(1.0, 1.0, 1.0, 1.0),
        code_reuse_bytes=64 * 1024, static_branch_sites=1024,
    )
    defaults.update(overrides)
    return PricingKey.build(**defaults)


def _block(n=1000):
    return BlockSpec(name="b", iform_counts={"ADD_r64_r64": float(n)},
                     deps=DependencyProfile(raw={64: 1.0}))


class TestPricingKey:
    def test_concurrency_bucketed_to_pow2(self):
        assert _key(concurrency=5).concurrency_bucket == 8
        assert _key(concurrency=8).concurrency_bucket == 8

    def test_code_reuse_quantised_to_64kb_steps(self):
        key = _key(code_reuse_bytes=680 * 1024)
        assert key.code_reuse_kb % 64 == 0
        assert abs(key.code_reuse_kb - 680) <= 32

    def test_factors_rounded(self):
        key = _key(cache_factors=(0.333, 0.666, 0.999, 0.501))
        assert key.l1i_factor == pytest.approx(0.33)
        assert key.llc_factor == pytest.approx(0.5)

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ConfigurationError):
            _key(concurrency=0)

    def test_keys_hashable_and_equal(self):
        assert _key() == _key()
        assert hash(_key()) == hash(_key())


class TestBlockPricer:
    def test_memoisation(self):
        pricer = BlockPricer(PLATFORM_A)
        block = _block()
        first = pricer.price(block, _key())
        second = pricer.price(block, _key())
        assert first is second
        assert pricer.cache_size == 1

    def test_distinct_keys_priced_separately(self):
        pricer = BlockPricer(PLATFORM_A)
        block = _block()
        warm = pricer.price(block, _key(cold=False))
        cold = pricer.price(block, _key(cold=True,
                                        code_reuse_bytes=2 * 1024 * 1024))
        assert cold.cycles >= warm.cycles
        assert pricer.cache_size == 2

    def test_frequency_override_changes_seconds_not_cycles(self):
        base = BlockPricer(PLATFORM_A)
        slow = BlockPricer(PLATFORM_A, frequency_ghz=1.05)
        block = _block()
        assert base.price(block, _key()).cycles == pytest.approx(
            slow.price(block, _key()).cycles, rel=0.05)
        assert slow.seconds(1e9) == pytest.approx(2 * base.seconds(1e9) / 2
                                                  * 2, rel=0.01)

    def test_platforms_price_differently(self):
        block = BlockSpec(
            name="branchy", iform_counts={"JNZ_rel": 500,
                                          "CMP_r64_imm": 500})
        a = BlockPricer(PLATFORM_A).price(block, _key())
        b = BlockPricer(PLATFORM_B).price(block, _key())
        assert a.cycles != b.cycles


class TestServiceMetrics:
    def _metrics(self):
        metrics = ServiceMetrics()
        metrics.absorb(BlockTiming(
            cycles=1000.0, instructions=2000.0, uops=2200.0,
            branches=100.0, branch_mispredictions=5.0,
            l1i_accesses=500.0, l1i_misses=50.0,
            l1d_accesses=400.0, l1d_misses=40.0,
            l2_accesses=90.0, l2_misses=9.0,
            llc_accesses=9.0, llc_misses=3.0,
            memory_bytes=192.0,
            topdown=TopDownBreakdown(2200.0, 400.0, 200.0, 1200.0),
        ))
        metrics.requests = 10
        return metrics

    def test_derived_rates(self):
        metrics = self._metrics()
        assert metrics.ipc == pytest.approx(2.0)
        assert metrics.cpi == pytest.approx(0.5)
        assert metrics.branch_mispredict_rate == pytest.approx(0.05)
        assert metrics.l1i_miss_rate == pytest.approx(0.1)
        assert metrics.l2_miss_rate == pytest.approx(0.1)
        assert metrics.llc_miss_rate == pytest.approx(3 / 9)

    def test_metric_lookup(self):
        metrics = self._metrics()
        assert metrics.metric("ipc") == metrics.ipc
        with pytest.raises(ConfigurationError):
            metrics.metric("tacos")

    def test_mpki(self):
        metrics = self._metrics()
        assert metrics.mpki(metrics.timing.llc_misses) == pytest.approx(1.5)

    def test_instructions_per_request(self):
        assert self._metrics().instructions_per_request == pytest.approx(200)

    def test_empty_metrics_are_zero(self):
        empty = ServiceMetrics()
        assert empty.ipc == 0.0
        assert empty.l1d_miss_rate == 0.0
        assert empty.instructions_per_request == 0.0

    def test_absorb_accumulates(self):
        metrics = self._metrics()
        before = metrics.timing.instructions
        metrics.absorb(BlockTiming(cycles=10.0, instructions=20.0))
        assert metrics.timing.instructions == before + 20.0
