"""Artifact-integrity envelope: digests, quarantine, atomic writes."""

import os
import pickle

import pytest

from repro.telemetry.session import Telemetry
from repro.util.errors import ArtifactIntegrityError
from repro.validation import integrity


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "artifact.bin")


class TestEnvelopeRoundTrip:
    def test_payload_and_version_survive(self, path):
        integrity.write_envelope(path, b"hello payload", schema="demo",
                                 version=3)
        payload, version = integrity.read_envelope(path, schema="demo")
        assert payload == b"hello payload"
        assert version == 3

    def test_empty_payload(self, path):
        integrity.write_envelope(path, b"", schema="demo")
        payload, _ = integrity.read_envelope(path, schema="demo")
        assert payload == b""

    def test_object_round_trip(self, path):
        value = {"knobs": [1.5, 2.5], "tier": "memcached"}
        integrity.save_object(path, value, schema="demo")
        assert integrity.load_object(path, schema="demo") == value

    def test_write_is_atomic_no_scratch_left(self, path):
        integrity.write_envelope(path, b"x" * 1024, schema="demo")
        leftovers = [name for name in os.listdir(os.path.dirname(path))
                     if ".tmp" in name]
        assert leftovers == []

    def test_missing_file_is_file_not_found(self, path):
        with pytest.raises(FileNotFoundError):
            integrity.read_envelope(path, schema="demo")


class TestCorruptionDetection:
    def _write(self, path):
        integrity.write_envelope(path, b"payload-bytes" * 10, schema="demo")

    def test_truncation_detected_and_quarantined(self, path):
        self._write(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-7])
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="demo")
        assert excinfo.value.reason == "truncated"
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantined")
        assert excinfo.value.quarantined_to == path + ".quarantined"

    def test_trailing_garbage_detected(self, path):
        self._write(path)
        with open(path, "ab") as handle:
            handle.write(b"garbage")
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="demo")
        assert excinfo.value.reason == "truncated"
        assert os.path.exists(path + ".quarantined")

    def test_bit_flip_detected(self, path):
        self._write(path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="demo")
        assert excinfo.value.reason == "digest_mismatch"
        assert os.path.exists(path + ".quarantined")

    def test_foreign_file_is_bad_header(self, path):
        with open(path, "wb") as handle:
            handle.write(b"this was never an envelope")
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="demo")
        assert excinfo.value.reason == "bad_header"

    def test_schema_mismatch_rejected(self, path):
        self._write(path)
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="other-schema")
        assert excinfo.value.reason == "bad_header"

    def test_future_version_rejected_but_not_quarantined(self, path):
        integrity.write_envelope(path, b"p", schema="demo", version=9)
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.read_envelope(path, schema="demo", max_version=1)
        assert excinfo.value.reason == "version"
        # The file is intact, just newer than this reader — keep it.
        assert os.path.exists(path)
        assert not os.path.exists(path + ".quarantined")

    def test_quarantine_can_be_disabled(self, path):
        self._write(path)
        with open(path, "ab") as handle:
            handle.write(b"junk")
        with pytest.raises(ArtifactIntegrityError):
            integrity.read_envelope(path, schema="demo",
                                    quarantine_bad=False)
        assert os.path.exists(path)

    def test_valid_digest_bad_pickle_quarantined(self, path):
        # A digest-valid envelope whose payload is not a pickle: the
        # digest passes, unpickling fails, and the file must still be
        # quarantined instead of half-trusted.
        integrity.write_envelope(path, b"\x80not really a pickle",
                                 schema="demo")
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.load_object(path, schema="demo")
        assert excinfo.value.reason == "undecodable"
        assert os.path.exists(path + ".quarantined")

    def test_quarantine_counted_in_telemetry(self, path):
        self._write(path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        session = Telemetry()
        session.activate()
        try:
            with pytest.raises(ArtifactIntegrityError):
                integrity.read_envelope(path, schema="demo")
            metric = session.registry.counter(
                "ditto_artifact_quarantines_total",
                "persisted artifacts that failed integrity checks and "
                "were quarantined", ("schema", "reason"))
            assert metric.value(schema="demo",
                                reason="digest_mismatch") == 1
        finally:
            session.deactivate()


class TestJsonStamping:
    def test_stamp_and_verify_round_trip(self):
        document = {"format": "demo", "tiers": {"a": 1, "b": [2, 3]}}
        integrity.stamp_json(document)
        assert document["integrity"]["algorithm"] == "sha256-canonical-json"
        integrity.verify_json(document)  # no raise

    def test_tampered_document_rejected(self):
        document = integrity.stamp_json({"value": 41})
        document["value"] = 42
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            integrity.verify_json(document, path="doc.json")
        assert excinfo.value.reason == "digest_mismatch"

    def test_unstamped_document_passes(self):
        integrity.verify_json({"format": "demo", "value": 1})

    def test_key_order_does_not_matter(self):
        stamped = integrity.stamp_json({"a": 1, "b": 2})
        reordered = {"b": 2, "a": 1,
                     "integrity": dict(stamped["integrity"])}
        integrity.verify_json(reordered)

    def test_unknown_algorithm_rejected(self):
        document = integrity.stamp_json({"v": 1})
        document["integrity"]["algorithm"] = "crc32"
        with pytest.raises(ArtifactIntegrityError):
            integrity.verify_json(document)
