"""Experiment memoization: correctness, accounting, and fine-tune reuse."""

from dataclasses import replace

import pytest

from repro.app.service import Deployment
from repro.app.workloads import build_memcached, build_redis
from repro.core.features import extract_service_features
from repro.core.finetune import fine_tune
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget, profile_deployment
from repro.runtime import (
    ExperimentCache,
    ExperimentConfig,
    run_experiment,
    sweep_load,
)
from repro.tracing.tracer import Tracer
from repro.util import ConfigurationError

FAST_BUDGET = ProfilingBudget(
    sampled_requests=8, max_accesses_per_spec=512,
    max_istream_per_block=2048, branch_outcomes_per_site=128,
    max_sites_per_population=8, dep_samples_per_block=48,
    profile_duration_s=0.015,
)


@pytest.fixture(scope="module")
def memcached_point():
    deployment = Deployment.single(build_memcached())
    load = LoadSpec.open_loop(100000)
    config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5)
    return deployment, load, config


class TestExperimentCache:
    def test_warm_equals_cold(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache()
        cold = cache.run(deployment, load, config)
        warm = cache.run(deployment, load, config)
        uncached = run_experiment(deployment, load, config)
        for result in (warm, uncached):
            assert (result.service("memcached").snapshot()
                    == cold.service("memcached").snapshot())
            assert result.throughput == cold.throughput
            assert result.latency_ms(99) == cold.latency_ms(99)

    def test_hit_miss_accounting(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache()
        cache.run(deployment, load, config)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.run(deployment, load, config)
        cache.run(deployment, load, config)
        assert (cache.stats.hits, cache.stats.misses) == (2, 1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_distinct_inputs_miss(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache()
        cache.run(deployment, load, config)
        cache.run(deployment, load, replace(config, seed=6))
        cache.run(deployment, LoadSpec.open_loop(50000), config)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3
        assert len(cache) == 3

    def test_hit_returns_isolated_copy(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache()
        cache.run(deployment, load, config)
        warm = cache.run(deployment, load, config)
        warm.service("memcached").requests += 1_000_000
        again = cache.run(deployment, load, config)
        assert again.service("memcached").requests < 1_000_000

    def test_traced_runs_bypass(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache()
        traced = replace(config, tracer=Tracer(sample_rate=0.5, seed=1))
        cache.run(deployment, load, traced)
        cache.run(deployment, load, traced)
        assert cache.stats.bypasses == 2
        assert cache.stats.lookups == 0
        assert len(cache) == 0

    def test_lru_eviction(self, memcached_point):
        deployment, load, config = memcached_point
        cache = ExperimentCache(max_entries=1)
        cache.run(deployment, load, config)
        cache.run(deployment, load, replace(config, seed=6))
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        # The first entry was evicted: running it again is a miss.
        cache.run(deployment, load, config)
        assert cache.stats.misses == 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ExperimentCache(max_entries=0)

    def test_sweep_load_uses_cache(self, memcached_point):
        deployment, _load, config = memcached_point
        cache = ExperimentCache()
        loads = [LoadSpec.open_loop(40000), LoadSpec.open_loop(80000)]
        first = sweep_load(deployment, loads, config, cache=cache)
        second = sweep_load(deployment, loads, config, cache=cache)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 2
        assert [r.throughput for r in first] == [
            r.throughput for r in second]


class TestFineTuneWithCache:
    def test_repeat_fine_tune_hits_cache(self):
        deployment = Deployment.single(build_redis())
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.015,
                                  seed=5)
        profile = profile_deployment(deployment, LoadSpec.closed_loop(4),
                                     config, budget=FAST_BUDGET)
        features = extract_service_features(profile.artifacts("redis"))
        cache = ExperimentCache()
        cold = fine_tune(features, platform_config=config,
                         max_iterations=3, cache=cache)
        assert cache.stats.misses > 0
        misses_after_cold = cache.stats.misses
        warm = fine_tune(features, platform_config=config,
                         max_iterations=3, cache=cache)
        # The repeated run revisits the same knob trajectory: every
        # measurement is served from cache, and the outcome is identical.
        assert cache.stats.hits > 0
        assert cache.stats.misses == misses_after_cold
        assert warm.knobs == cold.knobs
        assert warm.error_history == cold.error_history
        assert warm.converged == cold.converged
