"""Property-based tests on the cloning pipeline's core invariants.

These exercise the mathematical spine of the paper: the Eq. 1/Eq. 2
inversions against explicit cache simulation, the LRU threshold theorem
behind Fig. 4, quantisation grids, and the timing model's monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import BlockSpec, CoreModel, MemAccessSpec, MemPattern, PLATFORM_A
from repro.hw.cache import (
    CacheConfig,
    SetAssociativeCache,
    generate_access_stream,
    miss_fraction,
)
from repro.hw.ir import BranchSpec, DependencyProfile
from repro.profiling.wset import (
    invert_data_hits,
    profile_working_sets,
    reuse_distances,
)


class TestLruThresholdTheorem:
    """§4.4.4: a cyclic visit order over W bytes hits iff cache >= W."""

    @given(wset_lines=st.integers(4, 96), cache_lines=st.integers(4, 128),
           pattern=st.sampled_from([MemPattern.SEQUENTIAL,
                                    MemPattern.SHUFFLED,
                                    MemPattern.POINTER_CHASE]))
    @settings(max_examples=30, deadline=None)
    def test_threshold_matches_simulation(self, wset_lines, cache_lines,
                                          pattern):
        spec = MemAccessSpec(wset_bytes=wset_lines * 64, accesses=1,
                             pattern=pattern)
        # Fully-associative LRU cache.
        cache = SetAssociativeCache(
            CacheConfig("fa", cache_lines * 64, cache_lines, 1))
        rng = np.random.default_rng(7)
        stream = generate_access_stream(spec, rng, length=wset_lines * 5)
        cache.access_many(stream[:wset_lines])
        cache.reset_stats()
        cache.access_many(stream[wset_lines:])
        predicted = miss_fraction(spec, cache_lines * 64)
        assert cache.miss_rate == pytest.approx(predicted, abs=1e-9)


class TestMattsonAgainstSimulation:
    @given(lines=st.integers(2, 40), length=st.integers(50, 400),
           seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_reuse_distance_hits_equal_lru_hits(self, lines, length, seed):
        rng = np.random.default_rng(seed)
        addresses = (rng.integers(0, lines, size=length) * 64).astype(
            np.int64)
        distances = reuse_distances(addresses)
        for capacity in (2, 4, 8, 16):
            cache = SetAssociativeCache(
                CacheConfig("fa", capacity * 64, capacity, 1))
            sim_hits = sum(cache.access(int(a)) for a in addresses)
            mattson_hits = int(((distances >= 0)
                                & (distances < capacity)).sum())
            assert sim_hits == mattson_hits


class TestEq1Properties:
    @given(wset_lines=st.sampled_from([4, 8, 16, 32, 64]),
           repeats=st.integers(3, 8))
    @settings(max_examples=15, deadline=None)
    def test_pure_loop_inverts_to_one_bin(self, wset_lines, repeats):
        addresses = np.tile(np.arange(wset_lines) * 64, repeats).astype(
            np.int64)
        profile = profile_working_sets(addresses, max_size=1 << 20)
        inverted = invert_data_hits(profile)
        expected_bin = wset_lines * 64
        total = sum(inverted.values())
        assert inverted.get(expected_bin, 0.0) == pytest.approx(total)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_inversion_conserves_hits(self, seed):
        rng = np.random.default_rng(seed)
        addresses = (rng.integers(0, 128, size=1500) * 64).astype(np.int64)
        profile = profile_working_sets(addresses, max_size=1 << 22)
        inverted = invert_data_hits(profile)
        assert sum(inverted.values()) == pytest.approx(profile.hits[-1])
        assert all(v >= 0 for v in inverted.values())


class TestTimingMonotonicity:
    def _time(self, **kwargs):
        defaults = dict(
            name="b",
            iform_counts={"ADD_r64_r64": 500.0, "MOV_r64_m64": 200.0},
            deps=DependencyProfile(raw={16: 1.0}),
        )
        defaults.update(kwargs)
        block = BlockSpec(**defaults)
        return CoreModel(PLATFORM_A.context()).time_block(block)

    @given(scale=st.floats(1.1, 8.0))
    @settings(max_examples=20, deadline=None)
    def test_more_instructions_more_cycles(self, scale):
        base = self._time()
        bigger = self._time(iform_counts={
            "ADD_r64_r64": 500.0 * scale, "MOV_r64_m64": 200.0 * scale})
        assert bigger.cycles > base.cycles
        assert bigger.instructions > base.instructions

    @given(exp=st.integers(10, 26))
    @settings(max_examples=17, deadline=None)
    def test_cycles_monotone_in_wset(self, exp):
        small = self._time(mem=(MemAccessSpec(wset_bytes=2**exp,
                                              accesses=200.0),))
        big = self._time(mem=(MemAccessSpec(wset_bytes=2**(exp + 1),
                                            accesses=200.0),))
        assert big.cycles >= small.cycles - 1e-6

    @given(rate=st.floats(0.0, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_hostile_branches_never_cheaper(self, rate):
        friendly = self._time(branches=(BranchSpec(
            executions=100, taken_rate=0.98, transition_rate=0.01),))
        hostile = self._time(branches=(BranchSpec(
            executions=100, taken_rate=0.5 + rate * 0.01,
            transition_rate=0.5),))
        assert (hostile.branch_mispredictions
                >= friendly.branch_mispredictions)

    @given(iterations=st.integers(1, 50))
    @settings(max_examples=15, deadline=None)
    def test_iterations_scale_linearly(self, iterations):
        one = self._time(iterations=1.0)
        many = self._time(iterations=float(iterations))
        assert many.cycles == pytest.approx(iterations * one.cycles,
                                            rel=1e-9)

    def test_counters_never_negative(self):
        timing = self._time(
            mem=(MemAccessSpec(wset_bytes=1 << 26, accesses=100.0,
                               pattern=MemPattern.RANDOM, write_frac=0.3,
                               shared_frac=0.4),),
            branches=(BranchSpec(executions=50, taken_rate=0.5,
                                 transition_rate=0.5),),
        )
        for field in ("cycles", "instructions", "uops", "branches",
                      "branch_mispredictions", "l1i_misses", "l1d_misses",
                      "l2_misses", "llc_misses", "memory_bytes"):
            assert getattr(timing, field) >= 0.0, field


class TestGeneratorRealisationProperties:
    """The generated blocks must realise the feature set they were built
    from — checked via hypothesis-driven synthetic feature variations."""

    @given(instr=st.floats(500, 50000), seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_instruction_target_always_met(self, instr, seed):
        from repro.core.body_gen import GeneratorConfig, build_blocks
        from tests._feature_factory import make_features
        features = make_features(instructions_per_request=instr)
        rng = np.random.default_rng(seed)
        blocks = build_blocks(features, GeneratorConfig(), "op", rng)
        total = sum(b.instructions_per_request for b in blocks)
        assert total == pytest.approx(max(64.0, instr), rel=0.05)

    @given(chase=st.floats(0.0, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_chase_fraction_respected_in_big_bins(self, chase):
        from repro.core.body_gen import GeneratorConfig, build_blocks
        from tests._feature_factory import make_features
        features = make_features(chase_ratio_large=chase)
        rng = np.random.default_rng(1)
        blocks = build_blocks(features, GeneratorConfig(), "op", rng)
        big_total = 0.0
        big_chase = 0.0
        for block in blocks:
            for spec in block.mem:
                if spec.wset_bytes > 512 * 1024:
                    weight = spec.accesses * block.iterations
                    big_total += weight
                    if spec.pattern is MemPattern.POINTER_CHASE:
                        big_chase += weight
        if big_total > 0 and chase > 0.05:
            assert big_chase / big_total == pytest.approx(chase, abs=0.1)
