"""Multi-tenancy integration tests (§3.4, §7.4).

Co-locating services on one node must degrade them through the shared
resources the runtime models — LLC capacity, i-side pollution, CPU
queueing — and the effect must carry over to clones.
"""

import pytest

from repro.app.service import Deployment, Placement
from repro.app.workloads import build_memcached, build_redis
from repro.app.workloads.socialnet import social_network_deployment
from repro.hw import PLATFORM_A, PLATFORM_C
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment


def _solo_memcached(config, load):
    return run_experiment(Deployment.single(build_memcached()), load, config)


def _colocated(config, load):
    """Memcached sharing node0 with a dozen Social Network tiers."""
    services = {"memcached": build_memcached()}
    deployment = social_network_deployment()
    services.update(deployment.services)
    placements = [Placement(name, "node0") for name in services]
    colocated = Deployment(services=services, placements=placements,
                           entry_service="memcached")
    return run_experiment(colocated, load, config)


class TestColocation:
    def test_colocated_code_pollutes_cold_dispatches(self):
        # At low load (cold-heavy), co-located tiers' code inflates the
        # i-side reuse distance of every dispatch.
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=4)
        load = LoadSpec.open_loop(5000)
        solo = _solo_memcached(config, load)
        shared = _colocated(config, load)
        assert (shared.service("memcached").l2_miss_rate
                >= solo.service("memcached").l2_miss_rate)

    def test_llc_share_shrinks_with_resident_neighbours(self):
        # Per-request LLC misses grow under co-location (the miss *rate*
        # can even drop, because co-location also adds LLC-hitting code
        # fetches to the denominator).
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=4)
        load = LoadSpec.open_loop(60000)
        solo = _solo_memcached(config, load)
        shared = _colocated(config, load)
        solo_m = solo.service("memcached")
        shared_m = shared.service("memcached")
        solo_mpr = solo_m.timing.llc_misses / max(1, solo_m.requests)
        shared_mpr = shared_m.timing.llc_misses / max(1, shared_m.requests)
        assert shared_mpr > solo_mpr

    def test_small_platform_oversubscription(self):
        # Platform C has 4 cores; 14 tiers' workers oversubscribe it,
        # degrading per-tier IPC relative to platform A (Fig. 7's
        # observation about running the full graph on C).
        deployment = social_network_deployment()
        load = LoadSpec.open_loop(500)
        on_a = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.03, seed=4))
        on_c = run_experiment(deployment, load, ExperimentConfig(
            platform=PLATFORM_C, duration_s=0.03, seed=4))
        a_ipc = on_a.service("text-service").ipc
        c_ipc = on_c.service("text-service").ipc
        assert c_ipc < a_ipc

    def test_two_kv_stores_share_a_node(self):
        services = {"memcached": build_memcached(), "redis": build_redis()}
        deployment = Deployment(
            services=services,
            placements=[Placement(name, "node0") for name in services],
            entry_service="memcached",
        )
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.02,
                                  seed=4)
        result = run_experiment(deployment, LoadSpec.open_loop(50000),
                                config)
        # Only the entry service receives load; redis idles but its
        # residency still pressures the node state.
        assert result.service("memcached").requests > 0
        assert result.service("redis").requests == 0


class TestClusterPlacement:
    def test_spreading_tiers_across_nodes_runs(self):
        placement = {
            "frontend": "node0",
            "compose-post-service": "node1",
            "home-timeline-service": "node1",
            "user-timeline-service": "node1",
            "post-storage-service": "node2",
            "social-graph-service": "node2",
            "socialgraph-redis": "node2",
        }
        deployment = social_network_deployment(node="node3",
                                               placement=placement)
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                  seed=4)
        result = run_experiment(deployment, LoadSpec.open_loop(600), config)
        assert result.latency.completed > 10
        assert set(result.node_utilisation) == {"node0", "node1", "node2",
                                                "node3"}

    def test_cross_node_rpcs_add_latency(self):
        local = social_network_deployment()
        spread = social_network_deployment(
            node="node1", placement={"frontend": "node0"})
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                  seed=4)
        load = LoadSpec.open_loop(500)
        local_result = run_experiment(local, load, config)
        spread_result = run_experiment(spread, load, config)
        # Wire hops between frontend and every downstream tier add base
        # latency per RPC.
        assert (spread_result.latency_ms(50)
                > local_result.latency_ms(50))

    def test_cross_node_traffic_hits_the_wire(self):
        spread = social_network_deployment(
            node="node1", placement={"frontend": "node0"})
        config = ExperimentConfig(platform=PLATFORM_A, duration_s=0.03,
                                  seed=4)
        result = run_experiment(spread, LoadSpec.open_loop(500), config)
        # Both nodes saw NIC traffic.
        assert result.service("frontend").net_tx_bytes > 0
        assert result.service("home-timeline-service").net_rx_bytes > 0
