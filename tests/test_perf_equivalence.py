"""Bit-identity proofs for the simulation fast paths.

The perf work (vectorized cache/branch models, the slotted DES engine,
cached histogram samplers) is only admissible because it changes *no*
observable result. These tests pin that down two ways:

* property tests — the batch/vectorized implementations must agree
  element-for-element (and state-for-state) with their scalar reference
  counterparts across access patterns and random configurations;
* digest-equivalence tests — full experiment runs must reproduce the
  exact result digests captured on the pre-optimization engine, so any
  future "optimization" that perturbs event order, RNG consumption or
  float summation order fails loudly.
"""

import numpy as np
import pytest

from repro.hw.branch import (
    GsharePredictor,
    generate_branch_outcomes,
    generate_branch_outcomes_reference,
)
from repro.hw.cache import CacheConfig, SetAssociativeCache, generate_access_stream
from repro.hw.ir import MemAccessSpec, MemPattern
from repro.hw.stackdist import stack_distances
from repro.profiling.wset import reuse_distances, reuse_distances_reference
from repro.util.rng import make_rng
from repro.util.stats import Histogram

PATTERNS = [MemPattern.SEQUENTIAL, MemPattern.STRIDED, MemPattern.RANDOM,
            MemPattern.POINTER_CHASE]


# --------------------------------------------------------------------- #
# stack distances
# --------------------------------------------------------------------- #
class TestStackDistances:
    def test_matches_reference_on_random_streams(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            n = int(rng.integers(1, 400))
            lines = rng.integers(0, max(2, n // 2), size=n)
            np.testing.assert_array_equal(
                stack_distances(lines),
                reuse_distances_reference(lines * 64))

    def test_reuse_distances_wrapper_agrees(self):
        rng = np.random.default_rng(7)
        addresses = rng.integers(0, 4096, size=1000) * 8
        np.testing.assert_array_equal(
            reuse_distances(addresses),
            reuse_distances_reference(addresses))

    def test_first_touches_are_minus_one(self):
        distances = stack_distances(np.array([5, 9, 5, 9, 5]))
        np.testing.assert_array_equal(distances, [-1, -1, 1, 1, 1])


# --------------------------------------------------------------------- #
# set-associative cache: batch vs scalar
# --------------------------------------------------------------------- #
def _clone_state(cache):
    return [list(ways) for ways in cache._sets]


class TestCacheBatchEquivalence:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_patterns_match_scalar(self, pattern):
        spec = MemAccessSpec(wset_bytes=256 * 1024, accesses=4096,
                             pattern=pattern)
        stream = generate_access_stream(spec, make_rng(3, pattern.name), 4096)
        batch = SetAssociativeCache(CacheConfig("l2", 64 * 1024, 8, 12))
        scalar = SetAssociativeCache(CacheConfig("l2", 64 * 1024, 8, 12))
        hits_batch = batch.access_many(stream)
        hits_scalar = scalar._access_many_scalar(stream)
        assert hits_batch == hits_scalar
        assert (batch.hits, batch.misses) == (scalar.hits, scalar.misses)
        assert _clone_state(batch) == _clone_state(scalar)

    def test_random_configs_and_interleaving(self):
        rng = np.random.default_rng(11)
        for trial in range(20):
            assoc = int(rng.choice([1, 2, 4, 8]))
            sets = int(rng.choice([4, 16, 64]))
            cfg = CacheConfig("t", 64 * assoc * sets, assoc, 1)
            batch = SetAssociativeCache(cfg)
            scalar = SetAssociativeCache(cfg)
            # several rounds so the batch path starts from warm state too
            for _ in range(3):
                stream = rng.integers(0, sets * assoc * 4, size=300) * 64
                assert batch.access_many(stream) == \
                    scalar._access_many_scalar(stream)
                # interleave scalar singles between batches
                extra = rng.integers(0, sets * assoc * 4, size=5) * 64
                for address in extra:
                    assert batch.access(int(address)) == \
                        scalar.access(int(address))
            assert (batch.hits, batch.misses) == (scalar.hits, scalar.misses)
            assert _clone_state(batch) == _clone_state(scalar)


# --------------------------------------------------------------------- #
# branch model: vectorized vs scalar
# --------------------------------------------------------------------- #
class TestBranchEquivalence:
    def test_outcome_generation_matches_reference(self):
        rng = np.random.default_rng(5)
        for trial in range(30):
            taken = float(rng.uniform(0.0, 1.0))
            transition = float(rng.uniform(0.0, 1.0))
            length = int(rng.integers(1, 300))
            seed = int(rng.integers(0, 2**31))
            fast = generate_branch_outcomes(
                taken, transition, length, np.random.default_rng(seed))
            slow = generate_branch_outcomes_reference(
                taken, transition, length, np.random.default_rng(seed))
            np.testing.assert_array_equal(fast, slow)

    def test_outcome_generation_consumes_same_rng_stream(self):
        fast_rng = np.random.default_rng(99)
        slow_rng = np.random.default_rng(99)
        generate_branch_outcomes(0.6, 0.3, 257, fast_rng)
        generate_branch_outcomes_reference(0.6, 0.3, 257, slow_rng)
        assert fast_rng.bit_generator.state == slow_rng.bit_generator.state

    def test_predictor_batch_matches_scalar(self):
        rng = np.random.default_rng(17)
        for trial in range(15):
            history_bits = int(rng.integers(1, 14))
            batch_pred = GsharePredictor(history_bits, table_bits=10)
            scalar_pred = GsharePredictor(history_bits, table_bits=10)
            for _ in range(3):
                n = int(rng.integers(1, 200))
                pcs = rng.integers(0, 1 << 20, size=n)
                takens = rng.random(n) < 0.7
                batch_correct = batch_pred.predict_and_update_many(pcs, takens)
                scalar_correct = np.array([
                    scalar_pred.predict_and_update(int(pc), bool(t))
                    for pc, t in zip(pcs, takens)])
                np.testing.assert_array_equal(batch_correct, scalar_correct)
            assert batch_pred._history == scalar_pred._history
            assert batch_pred.predictions == scalar_pred.predictions
            assert batch_pred.mispredictions == scalar_pred.mispredictions
            np.testing.assert_array_equal(batch_pred._table,
                                          scalar_pred._table)


# --------------------------------------------------------------------- #
# histogram sampling: cached CDF vs rng.choice
# --------------------------------------------------------------------- #
class TestHistogramSamplerEquivalence:
    def test_sample_matches_choice_stream(self):
        hist = Histogram({"get": 7.0, "set": 2.0, "del": 1.0})
        keys, probs = hist.keys_and_probs()
        cached = hist.sample(np.random.default_rng(123), size=64)
        reference_rng = np.random.default_rng(123)
        reference = [keys[reference_rng.choice(len(keys), p=probs)]
                     for _ in range(64)]
        assert cached == reference

    def test_add_invalidates_cached_sampler(self):
        hist = Histogram({"a": 1.0})
        assert hist.sample(np.random.default_rng(1), 4) == ["a"] * 4
        hist.add("b", 1e9)
        assert "b" in hist.sample(np.random.default_rng(1), 8)


# --------------------------------------------------------------------- #
# digest equivalence with the pre-optimization engine
# --------------------------------------------------------------------- #
# Reference digests captured from full experiment runs on the commit
# immediately before the perf PR (scalar cache/branch models, the
# proxy-event engine). The optimized stack must reproduce them bit for
# bit: event order, RNG stream consumption and float summation order are
# all load-bearing.
REFERENCE_DIGESTS = {
    "memcached_fault_free":
        "57267ad03685dd8c97418567725cc4c4b580bb373beb2de64c6a0a70f728169c",
    # Re-pinned when the any_of timeout race was fixed: the old values
    # captured every timed RPC losing instantly to its own deadline
    # (error rate 100%), so this resilience-enabled run legitimately
    # changed. The fault-free runs above/below were (and must stay)
    # untouched by that fix.
    "gateway_faulted":
        "6118a0dc9f24130a4c5595d782131aa488389290d18e6c7502c7dd6e78464368",
    "gateway_fault_timeline":
        "405ea31291dd15f022a460fffab9419812f64d81b88d09899684a834b3c58f27",
    "memcached_clone_probe":
        "1012d89ce423a37913c832830d25e077bddca290f388a66b841b6f120e92d018",
}


def _result_digest(result):
    from repro.util.spec_hash import stable_digest

    parts = [
        {name: m.snapshot() for name, m in sorted(result.services.items())},
        tuple(result.latency.samples),
        result.outcome_counts(),
        sorted(result.node_utilisation.items()),
        sorted(result.disk_utilisation.items()),
    ]
    if result.faults is not None:
        parts.append(result.faults.digest())
    return stable_digest(*parts)


class TestDigestEquivalence:
    def test_memcached_fault_free_digest_unchanged(self):
        from repro.app.service import Deployment
        from repro.app.workloads import build_memcached
        from repro.hw import PLATFORM_A
        from repro.loadgen import LoadSpec
        from repro.runtime import ExperimentConfig, run_experiment

        result = run_experiment(
            Deployment.single(build_memcached()),
            LoadSpec.open_loop(50_000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.01, seed=7))
        assert _result_digest(result) == \
            REFERENCE_DIGESTS["memcached_fault_free"]

    def test_faulted_gateway_digests_unchanged(self):
        from repro.app.workloads.asyncgw import async_gateway_deployment
        from repro.faults import (FaultPlan, FaultWindow, LatencySpikeFault,
                                  NodeCrashFault, PacketLossFault)
        from repro.hw import PLATFORM_A
        from repro.loadgen import LoadSpec
        from repro.runtime import (ExperimentConfig, ResilienceConfig,
                                   run_experiment)

        plan = FaultPlan((
            PacketLossFault(rate=0.2, retransmit_delay_s=100e-6),
            LatencySpikeFault(extra_s=50e-6, probability=0.5,
                              window=FaultWindow(0.002, 0.006)),
            NodeCrashFault(node="node0", at_s=0.006, downtime_s=0.002),
        ))
        config = ExperimentConfig(
            platform=PLATFORM_A, duration_s=0.01, seed=7, fault_plan=plan,
            resilience=ResilienceConfig(rpc_timeout_s=2e-3,
                                        max_queue_depth=64))
        result = run_experiment(async_gateway_deployment(),
                                LoadSpec.open_loop(2_000), config)
        assert _result_digest(result) == REFERENCE_DIGESTS["gateway_faulted"]
        assert result.faults.digest() == \
            REFERENCE_DIGESTS["gateway_fault_timeline"]

    def test_clone_probe_digest_unchanged(self):
        from repro import (Deployment, DittoCloner, ExperimentConfig,
                           LoadSpec, build_memcached)
        from repro.hw import PLATFORM_A
        from repro.loadgen import LoadSpec
        from repro.profiling import ProfilingBudget
        from repro.runtime import ExperimentConfig, run_experiment

        cloner = DittoCloner(
            fine_tune_tiers=True, max_tune_iterations=3,
            budget=ProfilingBudget(sampled_requests=8,
                                   profile_duration_s=0.015),
            executor="serial")
        clone = cloner.clone(
            Deployment.single(build_memcached()),
            LoadSpec.open_loop(100_000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.02, seed=5))
        probe = run_experiment(
            clone.synthetic, LoadSpec.open_loop(50_000),
            ExperimentConfig(platform=PLATFORM_A, duration_s=0.01, seed=7))
        assert _result_digest(probe) == \
            REFERENCE_DIGESTS["memcached_clone_probe"]
