"""Ablations of DESIGN.md's called-out design choices.

Not a paper figure — these quantify why Ditto's knobs are set the way
they are, on the Memcached clone:

1. branch-rate quantisation depth: the paper's 2^-1..2^-10 grid vs a
   shallow 2^-1..2^-3 grid;
2. instruction-memory granularity: one block vs the Eq. 2 multi-block
   realisation;
3. fine tuning on vs off;
4. working-set realisation (Eq. 1) on vs smallest-set collapse.
"""

from dataclasses import replace

from conftest import APPS, BENCH_BUDGET, write_result

from repro.analysis import compare_metrics
from repro.app.service import Deployment, ServiceSpec
from repro.core import GeneratorConfig, fine_tune, generate_program, \
    generate_skeleton
from repro.core.features import extract_service_features
from repro.profiling import profile_deployment
from repro.profiling.branches import profile_branches
from repro.runtime import run_experiment

METRICS = ("ipc", "branch", "l1i", "l1d", "llc")


def test_design_ablations(benchmark):
    setup = APPS["memcached"]
    original = Deployment.single(setup.builder())
    load = setup.loads["medium"]
    profile_config = setup.config(duration_s=0.02, seed=5)
    profile = profile_deployment(original, load, profile_config,
                                 budget=BENCH_BUDGET)
    artifacts = profile.artifacts("memcached")
    features = extract_service_features(artifacts)
    validation = setup.config(seed=11)
    actual = run_experiment(original, load, validation)

    def measure(variant_features, config):
        program, files = generate_program(variant_features, config)
        spec = ServiceSpec(
            name="memcached",
            skeleton=generate_skeleton(variant_features.threads,
                                       variant_features.network),
            program=program,
            request_mix=dict(variant_features.handler_mix) or None,
            files=files,
        )
        synth = run_experiment(Deployment.single(spec), load, validation)
        report = compare_metrics(actual.service("memcached"),
                                 synth.service("memcached"))
        return report

    def run_all():
        results = {}
        # Baseline: everything on, tuned.
        tuned = fine_tune(features, platform_config=profile_config,
                          max_iterations=5)
        results["baseline_tuned"] = measure(
            features, replace(GeneratorConfig(), knobs=tuned.knobs))
        results["no_tuning"] = measure(features, GeneratorConfig())
        # Shallow branch quantisation (2^-1..2^-3).
        shallow = replace(features,
                          branches=profile_branches(artifacts,
                                                    max_exponent=3))
        results["branch_grid_2^-3"] = measure(shallow, GeneratorConfig())
        # Instruction-memory granularity: one block only.
        results["single_block"] = measure(
            features, GeneratorConfig(instruction_memory=False))
        # Working sets collapsed to 64B.
        results["no_dmem"] = measure(
            features, GeneratorConfig(data_memory=False))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'variant':<20}" + "".join(f"{m:>9}" for m in METRICS)
             + f"{'mean':>9}"]
    means = {}
    for variant, report in results.items():
        means[variant] = report.mean_error(list(METRICS))
        lines.append(
            f"{variant:<20}"
            + "".join(f"{report.error_of(m):>9.1%}" for m in METRICS)
            + f"{means[variant]:>9.1%}")
    write_result("ablation_design_choices", "\n".join(lines))

    # Each ablated design choice costs accuracy on its paired metric.
    assert (results["branch_grid_2^-3"].error_of("branch")
            >= results["no_tuning"].error_of("branch") - 0.02)
    assert (results["single_block"].error_of("l1i")
            > results["no_tuning"].error_of("l1i"))
    assert (results["no_dmem"].error_of("llc")
            > results["no_tuning"].error_of("llc"))
    assert (results["no_dmem"].error_of("l1d")
            > results["no_tuning"].error_of("l1d"))
    # Tuning never hurts the overall mean much and usually helps.
    assert means["baseline_tuned"] <= means["no_tuning"] + 0.02
