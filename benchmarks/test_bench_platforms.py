"""Table 1: server platform specifications.

Regenerates the platform-specification table and benchmarks the cost of
building a full per-platform execution context (the pricing hot path).
"""

from conftest import write_result

from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C
from repro.runtime.pricing import BlockPricer, PricingKey

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

EXPECTED = {
    # platform: (freq GHz, cores/socket, sockets, L2, LLC, net bps)
    "A": (2.10, 22, 2, 1 * MB, 30 * MB + 256 * KB, 10e9),
    "B": (2.60, 10, 2, 256 * KB, 25 * MB, 1e9),
    "C": (3.50, 4, 1, 256 * KB, 8 * MB, 1e9),
}


def test_table1_platforms(benchmark):
    platforms = (PLATFORM_A, PLATFORM_B, PLATFORM_C)

    def build_contexts():
        key = PricingKey.build(False, 4, 1.0, (1, 1, 1, 1), 65536, 4096)
        return [BlockPricer(p).context_for(key) for p in platforms]

    contexts = benchmark.pedantic(build_contexts, rounds=3, iterations=1)
    assert len(contexts) == 3
    rows = [f"{'field':<22}{'Platform A':>16}{'Platform B':>16}"
            f"{'Platform C':>16}"]
    fields = [
        ("CPU model", lambda p: p.cpu_model),
        ("Base frequency", lambda p: f"{p.base_frequency_ghz:.2f}GHz"),
        ("CPU cores", lambda p: str(p.cores_per_socket)),
        ("CPU family", lambda p: p.uarch.name),
        ("Sockets", lambda p: str(p.sockets)),
        ("L1i/L1d", lambda p: f"{p.l1i.size_bytes // KB}KB/"
                              f"{p.l1d.size_bytes // KB}KB"),
        ("L2", lambda p: f"{p.l2.size_bytes / KB:.0f}KB"),
        ("LLC", lambda p: f"{p.llc.size_bytes / MB:.2f}MB"),
        ("RAM", lambda p: f"{p.ram_bytes // GB}GB"),
        ("Disk", lambda p: p.disk.kind.upper()),
        ("Network", lambda p: f"{p.network.bandwidth_bits_per_s / 1e9:.0f}Gbe"),
    ]
    for label, getter in fields:
        rows.append(f"{label:<22}" + "".join(
            f"{getter(p):>16}" for p in platforms))
    write_result("table1_platforms", "\n".join(rows))
    for platform in platforms:
        freq, cores, sockets, l2, llc, net = EXPECTED[platform.name]
        assert platform.base_frequency_ghz == freq
        assert platform.cores_per_socket == cores
        assert platform.sockets == sockets
        assert platform.l2.size_bytes == l2
        assert platform.llc.size_bytes == llc
        assert platform.network.bandwidth_bits_per_s == net
    # Paper's qualitative relations.
    assert PLATFORM_A.disk.kind == "ssd"
    assert PLATFORM_B.disk.kind == "hdd" and PLATFORM_C.disk.kind == "hdd"
    assert PLATFORM_B.uarch.name == "haswell"
