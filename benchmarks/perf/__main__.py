"""CLI entry point: ``PYTHONPATH=src python -m benchmarks.perf``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from benchmarks.perf import DEFAULT_OUTPUT, TARGETS, run_suite, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Simulation fast-path benchmarks; writes BENCH_perf.json.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads (seconds, not minutes)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per benchmark; best is reported")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check-targets", action="store_true",
                        help="exit non-zero if an ISSUE target speedup is "
                             "missed (only meaningful at full scale on the "
                             "reference machine)")
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "full"
    payload = run_suite(scale=scale, repeat=args.repeat)
    path = write_report(payload, args.output)

    metrics = payload["metrics"]
    speedups = payload["speedups_vs_baseline"]
    for name in sorted(metrics):
        shown = (f"{metrics[name]:>14,.0f}" if name.endswith("_per_s")
                 else f"{metrics[name]:>14.3f}")
        vs = (f"({speedups[name]:.2f}x vs baseline)"
              if name in speedups else "(new metric, no baseline)")
        print(f"{name:>27}: {shown}   {vs}")
    print(f"report: {path}")

    if args.check_targets:
        missed = {name: floor for name, floor in TARGETS.items()
                  if speedups[name] < floor}
        if missed:
            for name, floor in missed.items():
                print(f"TARGET MISSED: {name} needs >= {floor}x, "
                      f"got {speedups[name]:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
