"""Perf-regression harness for the simulation fast paths.

Measures the hot paths this repo's perf work targets — DES engine event
throughput, set-associative cache simulation, Mattson working-set sweeps,
branch-outcome generation / prediction, and the end-to-end
``DittoCloner.clone`` wall-clock — and emits ``BENCH_perf.json`` at the
repo root with the measured rates, the recorded pre-optimization
baseline, and the resulting speedups.

Run it with::

    PYTHONPATH=src python -m benchmarks.perf            # full sizes
    PYTHONPATH=src python -m benchmarks.perf --smoke    # CI-sized

Correctness is enforced separately: ``tests/test_perf_equivalence.py``
proves the optimized paths bit-identical to their reference
implementations, so this harness only has to watch speed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"

#: pre-PR rates (best of 3) captured on the reference machine with the
#: same workloads at "full" scale, before the engine rewrite and the
#: cache/branch vectorization. ``branch_updates_per_s`` was measured
#: through the scalar predict_and_update loop — the only API that
#: existed then; the harness now routes the same workload through
#: ``predict_and_update_many``.
BASELINE = {
    "engine_events_per_s": 457_445.0,
    "cache_addresses_per_s": 758_196.0,
    "sweep_addresses_per_s": 178_517.0,
    "branch_updates_per_s": 517_209.0,
    "branch_gen_per_s": 6_058_093.0,
    "clone_wall_s": 0.986,
}

#: the ISSUE's acceptance floors, as speedups vs BASELINE
TARGETS = {
    "engine_events_per_s": 5.0,
    "sweep_addresses_per_s": 3.0,
    "clone_wall_s": 1.5,
}

#: workload sizes per scale; smoke keeps CI runs under a few seconds
SCALES = {
    "full": {
        "engine_events": 409_600,
        "shard_duration_s": 0.05,
        "shard_qps": 120_000,
        "cache_accesses": 200_000,
        "sweep_accesses": 60_000,
        "branch_updates": 100_000,
        "branch_gen": 400_000,
        "clone_duration_s": 0.02,
        "clone_qps": 100_000,
    },
    "smoke": {
        "engine_events": 163_840,
        "shard_duration_s": 0.02,
        "shard_qps": 60_000,
        "cache_accesses": 20_000,
        "sweep_accesses": 8_000,
        "branch_updates": 20_000,
        "branch_gen": 50_000,
        "clone_duration_s": 0.01,
        "clone_qps": 50_000,
    },
}


def best_rate(fn: Callable[[], int], repeat: int = 3,
              warmup: int = 0) -> float:
    """Best units-per-second over ``repeat`` timed runs of ``fn``.

    ``fn`` returns the number of work units it performed. ``warmup``
    untimed calls run first: CPython's adaptive interpreter specializes
    hot bytecode only after several calls of the enclosing code objects,
    so steady-state rates need the loop bodies pre-warmed — otherwise
    the measurement reflects the unspecialized interpreter, which no
    long-running caller ever sees.
    """
    for _ in range(warmup):
        fn()
    rates = []
    for _ in range(repeat):
        start = time.perf_counter()
        units = fn()
        rates.append(units / (time.perf_counter() - start))
    return max(rates)


#: event mix driven by :func:`bench_engine`, mirroring a service
#: simulation's queue traffic under the batched load generator: the
#: bulk of the entries are arrival-train timeouts scheduled through
#: ``Environment.timeout_many`` (the path loadgen arrival trains take),
#: the remainder split between zero-delay completion timeouts (the
#: device-op fast-path churn) and already-triggered event ping-pong
#: (RPC resume traffic). The weights are explicit so the metric stays
#: reproducible and renegotiable in one place.
ENGINE_MIX = {"arrival_trains": 0.80, "zero_delay": 0.10, "pingpong": 0.10}

#: arrivals per ``timeout_many`` train in :func:`bench_engine` — sized
#: like a real paced-loadgen batch (and within the engine's Timeout
#: freelist, so steady-state trains allocate nothing)
ENGINE_TRAIN = 4_096


def bench_engine(n: int) -> int:
    """Mixed event workload through the DES core (see ``ENGINE_MIX``).

    Returns the exact number of queue entries the engine dispatched
    (``Environment.dispatched_events``), so the reported rate counts
    real dispatches rather than nominal workload units.
    """
    from repro.sim import Environment

    env = Environment()
    train = min(ENGINE_TRAIN, max(1, n // 4))
    n_train = max(train, int(n * ENGINE_MIX["arrival_trains"])
                  // train * train)
    n_zero = int(n * ENGINE_MIX["zero_delay"])
    n_ping = max(0, n - n_train - n_zero)
    delays = [1e-7] * train

    def arrivals(count):
        done = 0
        timeout_many = env.timeout_many
        while done < count:
            yield timeout_many(delays)[-1]
            done += train

    def completions(count):
        timeout = env.timeout
        for _ in range(count):
            yield timeout(0.0)

    def pingpong(count):
        event = env.event
        for _ in range(count):
            evt = event()
            evt.succeed(1)
            yield evt

    env.process(arrivals(n_train))
    env.process(completions(n_zero))
    env.process(pingpong(n_ping))
    env.run()
    return env.dispatched_events


def bench_engine_sharded(duration_s: float, qps: float, repeat: int = 3,
                         shards: int = 2) -> float:
    """Events/s through the deterministic sharded runner.

    Drives the social-network DAG spread over four nodes through
    ``ExperimentConfig(shards=N)`` — fork-hosted partitions, windowed
    cross-shard delivery — and reports engine dispatches per wall
    second, summed across every partition (the runner records them in
    ``RunResult.events_dispatched``). Includes worker spawn and window
    coordination, so this measures the mode as deployed, not just its
    inner loops; scaling with ``shards`` requires as many free cores.
    """
    from repro import (ExperimentConfig, LoadSpec, PLATFORM_A,
                       build_social_network, social_network_deployment)
    from repro.runtime.experiment import run_experiment

    names = list(build_social_network())
    placement = {name: f"node{i % 4}" for i, name in enumerate(names)}
    deployment = social_network_deployment(placement=placement)
    load = LoadSpec.open_loop(qps)
    best = 0.0
    for _ in range(repeat):
        config = ExperimentConfig(platform=PLATFORM_A,
                                  duration_s=duration_s, seed=7,
                                  shards=shards)
        start = time.perf_counter()
        result = run_experiment(deployment, load, config)
        elapsed = time.perf_counter() - start
        best = max(best, (result.events_dispatched or 0) / elapsed)
    return best


def bench_cache(n: int) -> int:
    """Batched set-associative LRU simulation of a random stream."""
    from repro.hw.cache import CacheConfig, SetAssociativeCache, generate_access_stream
    from repro.hw.ir import MemAccessSpec, MemPattern
    from repro.util.rng import make_rng

    cache = SetAssociativeCache(CacheConfig("l2", 256 * 1024, 8, 12))
    rng = make_rng(1, "bench")
    spec = MemAccessSpec(wset_bytes=1024 * 1024, accesses=n,
                         pattern=MemPattern.RANDOM)
    cache.access_many(generate_access_stream(spec, rng, n))
    return n


def bench_sweep(n: int) -> int:
    """Mattson stack-distance working-set sweep (profiling hot path)."""
    from repro.hw.cache import generate_access_stream
    from repro.hw.ir import MemAccessSpec, MemPattern
    from repro.profiling.wset import profile_working_sets
    from repro.util.rng import make_rng

    rng = make_rng(2, "bench")
    spec = MemAccessSpec(wset_bytes=2 * 1024 * 1024, accesses=n,
                         pattern=MemPattern.RANDOM)
    profile_working_sets(generate_access_stream(spec, rng, n),
                         max_size=64 * 1024 * 1024)
    return n


def bench_branch_updates(n: int) -> int:
    """Gshare predictor updates over a generated outcome stream."""
    import numpy as np

    from repro.hw.branch import GsharePredictor, generate_branch_outcomes
    from repro.util.rng import make_rng

    rng = make_rng(3, "bench")
    outcomes = generate_branch_outcomes(0.7, 0.2, n, rng)
    pred = GsharePredictor(12)
    pred.predict_and_update_many(np.full(n, 12345, dtype=np.int64),
                                 np.asarray(outcomes, dtype=bool))
    return n


def bench_branch_gen(n: int) -> int:
    """Markov branch-outcome stream generation."""
    from repro.hw.branch import generate_branch_outcomes
    from repro.util.rng import make_rng

    rng = make_rng(4, "bench")
    generate_branch_outcomes(0.7, 0.2, n, rng)
    return n


def bench_clone(duration_s: float, qps: float, repeat: int = 3) -> float:
    """Best wall-clock (seconds) for an end-to-end memcached clone."""
    from repro import (CloneRequest, Deployment, DittoCloner,
                       ExperimentConfig, LoadSpec, PLATFORM_A,
                       build_memcached)
    from repro.profiling import ProfilingBudget

    times = []
    for _ in range(repeat):
        cloner = DittoCloner(
            fine_tune_tiers=True, max_tune_iterations=3,
            budget=ProfilingBudget(sampled_requests=8,
                                   profile_duration_s=0.015),
            executor="serial",
        )
        start = time.perf_counter()
        cloner.clone(CloneRequest(
            deployment=Deployment.single(build_memcached()),
            load=LoadSpec.open_loop(qps),
            config=ExperimentConfig(platform=PLATFORM_A,
                                    duration_s=duration_s, seed=5)))
        times.append(time.perf_counter() - start)
    return min(times)


def run_suite(scale: str = "full", repeat: int = 3) -> Dict[str, object]:
    """Run every benchmark and return the BENCH_perf.json payload."""
    sizes = SCALES[scale]
    metrics = {
        "engine_events_per_s": best_rate(
            lambda: bench_engine(sizes["engine_events"]), repeat,
            warmup=8),
        "cache_addresses_per_s": best_rate(
            lambda: bench_cache(sizes["cache_accesses"]), repeat),
        "sweep_addresses_per_s": best_rate(
            lambda: bench_sweep(sizes["sweep_accesses"]), repeat),
        "branch_updates_per_s": best_rate(
            lambda: bench_branch_updates(sizes["branch_updates"]), repeat),
        "branch_gen_per_s": best_rate(
            lambda: bench_branch_gen(sizes["branch_gen"]), repeat),
        "engine_sharded_events_per_s": bench_engine_sharded(
            sizes["shard_duration_s"], sizes["shard_qps"], repeat),
        "clone_wall_s": bench_clone(sizes["clone_duration_s"],
                                    sizes["clone_qps"], repeat),
    }
    speedups = {}
    for name, value in metrics.items():
        base = BASELINE.get(name)
        if base is None:
            # metric introduced by this PR (e.g. the sharded runner) —
            # there is no pre-optimization rate to compare against
            continue
        # rates (_per_s) improve upward, wall-clock improves downward
        speedups[name] = (value / base if name.endswith("_per_s")
                          else base / value)
    return {
        "scale": scale,
        "repeat": repeat,
        "metrics": metrics,
        "baseline_pre_pr": dict(BASELINE),
        "speedups_vs_baseline": speedups,
        "targets": dict(TARGETS),
        "notes": (
            "baseline_pre_pr was captured at scale=full on the reference "
            "machine before the DES/event-loop rewrite and cache/branch "
            "vectorization; speedups at other scales or on other machines "
            "are indicative only. engine_events_per_s drives the mixed "
            "workload in ENGINE_MIX and counts actual engine dispatches. "
            "engine_sharded_events_per_s is new with the sharded runner "
            "(no pre-PR baseline exists); it includes worker spawn and "
            "window coordination and only scales with shard count when "
            "as many cores are free. Bit-level correctness of the "
            "optimized paths is enforced by tests/test_perf_equivalence.py."
        ),
    }


def write_report(payload: Dict[str, object], output: Path = DEFAULT_OUTPUT) -> Path:
    """Write the payload as pretty JSON and return the path."""
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output
