"""Fidelity-gate pass-rate matrix: six workloads x platforms A, B, C.

Every clone is profiled (and, for the single-tier apps, fine-tuned) on
platform A at medium load; original and synthetic then replay side by
side on all three platforms and each pair is scored by a
:class:`~repro.validation.FidelityGate` with the paper's default
tolerances (the §6 error envelope). The matrix reports, per cell, the
gate verdict and how many per-metric checks passed.

Expected shape: the profiled platform (A) passes cleanly; B and C trade
a few checks — mostly in the cache hierarchy, where the smaller L2/LLC
shift miss rates the knobs were not tuned against — which is exactly
the drift the gate exists to flag.
"""

from conftest import (
    APPS,
    BENCH_BUDGET,
    PROFILE_SECONDS,
    RUN_SECONDS,
    SOCIALNET_LOADS,
    write_result,
)

from repro.app.workloads.asyncgw import async_gateway_deployment
from repro.core import CloneRequest, DittoCloner
from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment
from repro.validation import FidelityGate

PLATFORMS = (PLATFORM_A, PLATFORM_B, PLATFORM_C)

ASYNCGW_LOAD = LoadSpec.open_loop(3_000)


def _gateway_clone():
    original = async_gateway_deployment()
    cloner = DittoCloner(fine_tune_tiers=False, budget=BENCH_BUDGET)
    config = ExperimentConfig(platform=PLATFORM_A,
                              duration_s=PROFILE_SECONDS, seed=5)
    result = cloner.clone(CloneRequest(deployment=original,
                                       load=ASYNCGW_LOAD, config=config))
    return original, result.synthetic, result.report


def test_validation_gate_matrix(benchmark, single_tier_clones,
                                socialnet_clone):
    gate = FidelityGate()
    workloads = {}
    for name, setup in APPS.items():
        original, synthetic, _report = single_tier_clones[name]
        workloads[name] = (original, synthetic, setup.loads["medium"],
                           setup.page_cache_bytes)
    sn_original, sn_synthetic, _ = socialnet_clone
    workloads["socialnetwork"] = (sn_original, sn_synthetic,
                                  SOCIALNET_LOADS["medium"], None)
    gw_original, gw_synthetic, _ = _gateway_clone()
    workloads["asyncgateway"] = (gw_original, gw_synthetic,
                                 ASYNCGW_LOAD, None)

    def run_matrix():
        reports = {}
        for name, (original, synthetic, load, cache) in workloads.items():
            for platform in PLATFORMS:
                config = ExperimentConfig(
                    platform=platform, duration_s=RUN_SECONDS, seed=11,
                    page_cache_bytes=cache)
                baseline = run_experiment(original, load, config)
                replay = run_experiment(synthetic, load, config)
                reports[(name, platform.name)] = gate.compare_runs(
                    baseline, replay, label=name,
                    platform=platform.name, seed=11)
        return reports

    reports = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = [f"{'workload':<15}"
             + "".join(f"{p.name:>20}" for p in PLATFORMS)]
    for name in workloads:
        row = [f"{name:<15}"]
        for platform in PLATFORMS:
            report = reports[(name, platform.name)]
            passed = sum(1 for c in report.checks if c.passed)
            verdict = "PASS" if report.passed else "fail"
            row.append(f"{verdict} {passed:>2}/{len(report.checks):<2}"
                       f" e={report.mean_error:4.2f}".rjust(20))
        lines.append("".join(row))
    failures = sorted(
        {check.metric
         for report in reports.values()
         for check in report.failures()})
    lines.append(f"failing metrics anywhere: {failures or 'none'}")
    write_result("validation_gate_matrix", "\n".join(lines))

    # The profiled platform is the paper's headline claim: every tuned
    # single-tier clone must clear the full gate on platform A.
    for name in APPS:
        assert reports[(name, "A")].passed, name
    # Across the whole matrix the envelope holds for the bulk of the
    # checks, even on the never-profiled platforms.
    total = sum(len(r.checks) for r in reports.values())
    passed = sum(1 for r in reports.values()
                 for c in r.checks if c.passed)
    assert passed / total >= 0.8, f"{passed}/{total} checks passed"
    benchmark.extra_info["cells"] = len(reports)
    benchmark.extra_info["check_pass_rate"] = round(passed / total, 4)
