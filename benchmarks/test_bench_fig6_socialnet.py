"""Fig. 6: end-to-end Social Network latency, original vs fully-synthetic.

Every one of the 14 tiers is replaced by its clone; the QPS sweep
compares p50/p95/p99 end-to-end latency. The shape claim: the synthetic
graph's latency tracks the original across the sweep, including where the
knee begins.
"""

from conftest import RUN_SECONDS, write_result

from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment

QPS_SWEEP = (200, 500, 1000, 1500, 2000)


def test_fig6_end_to_end_latency(benchmark, socialnet_clone):
    original, synthetic, report = socialnet_clone

    def run_sweep():
        rows = {}
        for qps in QPS_SWEEP:
            config = ExperimentConfig(platform=PLATFORM_A,
                                      duration_s=RUN_SECONDS, seed=11)
            rows[(qps, "actual")] = run_experiment(
                original, LoadSpec.open_loop(qps), config)
            rows[(qps, "synthetic")] = run_experiment(
                synthetic, LoadSpec.open_loop(qps), config)
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'QPS':>6}{'act p50':>10}{'syn p50':>10}{'act p95':>10}"
             f"{'syn p95':>10}{'act p99':>10}{'syn p99':>10}"]
    for qps in QPS_SWEEP:
        actual = rows[(qps, "actual")]
        synth = rows[(qps, "synthetic")]
        lines.append(
            f"{qps:>6}"
            f"{actual.latency_ms(50):>10.2f}{synth.latency_ms(50):>10.2f}"
            f"{actual.latency_ms(95):>10.2f}{synth.latency_ms(95):>10.2f}"
            f"{actual.latency_ms(99):>10.2f}{synth.latency_ms(99):>10.2f}")
    write_result("fig6_socialnet_latency", "\n".join(lines))

    # The topology was reconstructed, not copied.
    assert report.topology is not None
    assert report.topology.tier_count == len(original.services)
    # Latency tracks within a factor band at every pre-knee point, and
    # both curves rise monotonically-ish with load at the median.
    for qps in QPS_SWEEP[:4]:
        actual = rows[(qps, "actual")].latency_ms(50)
        synth = rows[(qps, "synthetic")].latency_ms(50)
        assert 0.4 * actual < synth < 2.5 * actual, qps
    for kind in ("actual", "synthetic"):
        first = rows[(QPS_SWEEP[0], kind)].latency_ms(99)
        last = rows[(QPS_SWEEP[-1], kind)].latency_ms(99)
        assert last >= first * 0.8, kind
