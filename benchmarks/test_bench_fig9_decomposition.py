"""Fig. 9: accuracy decomposition for MongoDB.

Rebuilds the clone stage by stage — A:skeleton, B:+syscalls, C:+instruction
count, D:+instruction mix, E:+branch behaviour, F:+instruction memory,
G:+data memory, H:+data dependencies, I:+fine tuning — and tracks IPC,
instructions, cycles and p99 latency toward the original's values.

Shape claims (from the paper's narrative): instructions reach the target
at C and stay; adding i-memory (F) lowers IPC by raising i-cache misses
and branch mispredictions; the final tuned stage lands closest to the
target on the tracked metrics.
"""

from dataclasses import replace

import pytest
from conftest import APPS, BENCH_BUDGET, RUN_SECONDS, write_result

from repro.app.service import Deployment, ServiceSpec
from repro.core import GeneratorConfig, fine_tune, generate_program, \
    generate_skeleton
from repro.core.features import extract_service_features
from repro.loadgen import LoadSpec
from repro.profiling import profile_deployment
from repro.runtime import run_experiment

STAGES = ["skeleton", "syscall", "inst_count", "inst_mix", "branch",
          "imem", "dmem", "datadep"]
LABELS = {
    "skeleton": "A:Skeleton", "syscall": "B:Syscall",
    "inst_count": "C:#insts", "inst_mix": "D:Inst. mix",
    "branch": "E:Branch", "imem": "F:I-mem", "dmem": "G:D-mem",
    "datadep": "H:Data dep.",
}


def test_fig9_mongodb_decomposition(benchmark):
    setup = APPS["mongodb"]
    original = Deployment.single(setup.builder())
    load = setup.loads["medium"]
    profile_config = setup.config(duration_s=0.02, seed=5)
    profile = profile_deployment(original, load, profile_config,
                                 budget=BENCH_BUDGET)
    features = extract_service_features(profile.artifacts("mongodb"))
    validation_config = setup.config(seed=11)
    target = run_experiment(original, load, validation_config)
    target_metrics = target.service("mongodb")

    def measure_stage(config):
        program, files = generate_program(features, config)
        spec = ServiceSpec(
            name="mongodb",
            skeleton=generate_skeleton(features.threads, features.network),
            program=program,
            request_mix=dict(features.handler_mix) or None,
            files=files,
        )
        result = run_experiment(Deployment.single(spec), load,
                                validation_config)
        metrics = result.service("mongodb")
        return {
            "ipc": metrics.ipc,
            "instructions": metrics.instructions_per_request,
            "cycles": (metrics.timing.cycles / max(1, metrics.requests)),
            "p99": result.latency_ms(99),
            "l1i": metrics.l1i_miss_rate,
            "branch": metrics.branch_mispredict_rate,
        }

    def run_all():
        rows = {}
        for stage in STAGES:
            rows[stage] = measure_stage(GeneratorConfig.stage(stage))
        tuned = fine_tune(features, platform_config=profile_config,
                          max_iterations=6)
        rows["tuned"] = measure_stage(
            replace(GeneratorConfig(), knobs=tuned.knobs))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'stage':<14}{'IPC':>8}{'insts/req':>12}{'cycles/req':>12}"
             f"{'p99 ms':>9}{'l1i':>8}{'branch':>8}"]
    target_row = {
        "ipc": target_metrics.ipc,
        "instructions": target_metrics.instructions_per_request,
        "cycles": target_metrics.timing.cycles / max(
            1, target_metrics.requests),
        "p99": target.latency_ms(99),
        "l1i": target_metrics.l1i_miss_rate,
        "branch": target_metrics.branch_mispredict_rate,
    }
    for stage in STAGES + ["tuned"]:
        row = rows[stage]
        label = LABELS.get(stage, "I:Tune")
        lines.append(f"{label:<14}{row['ipc']:>8.3f}"
                     f"{row['instructions']:>12.0f}{row['cycles']:>12.0f}"
                     f"{row['p99']:>9.3f}{row['l1i']:>8.4f}"
                     f"{row['branch']:>8.4f}")
    lines.append(f"{'target':<14}{target_row['ipc']:>8.3f}"
                 f"{target_row['instructions']:>12.0f}"
                 f"{target_row['cycles']:>12.0f}{target_row['p99']:>9.3f}"
                 f"{target_row['l1i']:>8.4f}{target_row['branch']:>8.4f}")
    write_result("fig9_decomposition", "\n".join(lines))

    # Instruction count is matched from stage C onward.
    for stage in STAGES[2:]:
        assert rows[stage]["instructions"] == pytest.approx(
            target_row["instructions"], rel=0.25), stage
    # The skeleton-only stage retires almost nothing.
    assert rows["skeleton"]["instructions"] < 0.2 * target_row["instructions"]
    # Adding instruction memory raises i-cache misses (the paper's F step).
    assert rows["imem"]["l1i"] > rows["branch"]["l1i"]
    # The tuned clone's cycles/IPC land closest to the target among the
    # late stages.
    late = ["dmem", "datadep", "tuned"]
    errors = {stage: abs(rows[stage]["ipc"] - target_row["ipc"])
              for stage in late}
    assert errors["tuned"] <= min(errors.values()) + 0.02
    # Latency converges toward the target as fidelity accumulates.
    assert (abs(rows["tuned"]["p99"] - target_row["p99"])
            <= abs(rows["skeleton"]["p99"] - target_row["p99"]) + 0.05)
