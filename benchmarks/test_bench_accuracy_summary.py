"""§6.2.1 in-text error summary.

"...with average errors across all applications being 4.1%, 9.9%, 7.1%,
5.1%, 6.9%, 12.1%, 0.1%, 0.1% [IPC, branch, L1i, L1d, L2, LLC, net BW,
disk BW]". This bench computes the same per-metric means over the four
single-tier clones at their medium (profiling) load and asserts they land
within a tolerance band of the paper's — our substrate is a simulator,
so the *ordering and magnitude class* is the claim, not the exact figure.
"""

from conftest import APPS, measure, write_result

from repro.analysis import compare_metrics

PAPER_MEANS = {
    "ipc": 0.041, "branch": 0.099, "l1i": 0.071, "l1d": 0.051,
    "l2": 0.069, "llc": 0.121, "net": 0.001, "disk": 0.001,
}
#: our acceptance ceiling per metric (generous: simulator, small budgets)
CEILING = {
    "ipc": 0.15, "branch": 0.15, "l1i": 0.15, "l1d": 0.15,
    "l2": 0.25, "llc": 0.25, "net": 0.05, "disk": 0.05,
}


def test_accuracy_summary(benchmark, single_tier_clones):
    def run_all():
        errors = {metric: [] for metric in PAPER_MEANS}
        for name, setup in APPS.items():
            original, synthetic, _report = single_tier_clones[name]
            load = setup.loads["medium"]
            config = setup.config(seed=11)
            actual = measure(original, load, config)
            synth = measure(synthetic, load, config)
            report = compare_metrics(actual.service(name),
                                     synth.service(name))
            for metric in ("ipc", "branch", "l1i", "l1d", "l2", "llc"):
                err = report.error_of(metric)
                if err != float("inf"):
                    errors[metric].append(err)
            a_net = actual.net_bandwidth(name)
            if a_net > 0:
                errors["net"].append(
                    abs(synth.net_bandwidth(name) - a_net) / a_net)
            a_disk = actual.disk_bandwidth(name)
            if a_disk > 0:
                errors["disk"].append(
                    abs(synth.disk_bandwidth(name) - a_disk) / a_disk)
        return errors

    errors = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'metric':<8}{'paper mean':>12}{'measured mean':>15}"
             f"{'ceiling':>9}"]
    means = {}
    for metric, values in errors.items():
        if not values:
            continue
        means[metric] = sum(values) / len(values)
        lines.append(f"{metric:<8}{PAPER_MEANS[metric]:>12.1%}"
                     f"{means[metric]:>15.1%}{CEILING[metric]:>9.1%}")
        benchmark.extra_info[f"mean_err_{metric}"] = round(means[metric], 4)
    write_result("accuracy_summary", "\n".join(lines))
    for metric, mean in means.items():
        assert mean < CEILING[metric], (metric, mean)
    # I/O volumes are near-exact, far tighter than CPU metrics — the
    # paper's 0.1% observation.
    assert means["net"] < min(m for k, m in means.items()
                              if k not in ("net", "disk")) + 1e-9
