"""Fig. 11: Memcached p99 latency under core-count and frequency scaling.

The heatmap: cores 4..16 x frequency 1.1..2.1 GHz, QoS 1 ms, actual vs
synthetic. The Fig. 11 deployment runs Memcached with a 16-thread worker
pool (so added cores matter) under a load high enough that aggressive
power management fails: with few cores, even the highest frequency sits
near saturation, and the lowest frequency is infeasible outright. (At the
paper's value sizes the 10GbE NIC bounds Memcached near 290K QPS, so the
sweep sits just below that — the core x frequency staircase is a CPU
phenomenon.) Shape claims: the low-core/low-frequency corner misses QoS,
the high-core/high-frequency corner meets it, and the synthetic marks
(nearly) the same cells infeasible as the actual.
"""

from conftest import BENCH_BUDGET, write_result

from repro.app.service import Deployment
from repro.app.workloads import build_memcached
from repro.core import CloneRequest, DittoCloner
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.runtime import ExperimentConfig, run_experiment

QOS_MS = 1.0
LOAD = LoadSpec.open_loop(230_000)
CORES = (4, 8, 12, 16)
FREQUENCIES = (1.1, 1.3, 1.5, 1.7, 1.9, 2.1)
#: short runs: the grid is 48 cells x ~12K requests
CELL_SECONDS = 0.012


def test_fig11_power_management(benchmark):
    original = Deployment.single(build_memcached(worker_threads=16))
    profiling_config = ExperimentConfig(platform=PLATFORM_A,
                                        duration_s=0.02, seed=5)
    synthetic = DittoCloner(
        fine_tune_tiers=True, max_tune_iterations=3, budget=BENCH_BUDGET,
    ).clone(CloneRequest(deployment=original,
                         load=LoadSpec.open_loop(300_000),
                         config=profiling_config)).synthetic

    def run_grid():
        cells = {}
        for kind, deployment in (("actual", original),
                                 ("synthetic", synthetic)):
            for cores in CORES:
                for freq in FREQUENCIES:
                    config = ExperimentConfig(
                        platform=PLATFORM_A, duration_s=CELL_SECONDS,
                        seed=11, cores=cores, frequency_ghz=freq)
                    result = run_experiment(deployment, LOAD, config)
                    cells[(kind, cores, freq)] = result.latency_ms(99)
        return cells

    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = []
    for kind in ("actual", "synthetic"):
        lines.append(f"--- {kind} p99 ms (X = misses {QOS_MS} ms QoS) ---")
        lines.append(f"{'GHz/cores':<10}"
                     + "".join(f"{c:>10}" for c in CORES))
        for freq in FREQUENCIES:
            row = f"{freq:<10}"
            for cores in CORES:
                value = cells[(kind, cores, freq)]
                mark = "X" if value > QOS_MS else " "
                row += f"{value:>9.2f}{mark}"
            lines.append(row)
    agree = sum(
        (cells[("actual", c, f)] > QOS_MS)
        == (cells[("synthetic", c, f)] > QOS_MS)
        for c in CORES for f in FREQUENCIES
    )
    total = len(CORES) * len(FREQUENCIES)
    lines.append(f"QoS-feasibility agreement: {agree}/{total} cells")
    write_result("fig11_power_heatmap", "\n".join(lines))

    for kind in ("actual", "synthetic"):
        # The high-core/high-frequency corner is feasible.
        assert cells[(kind, 16, 2.1)] < QOS_MS, kind
        # The aggressive power-management corner is not.
        assert cells[(kind, 4, 1.1)] > QOS_MS, kind
        # Frequency helps at fixed low core count.
        assert cells[(kind, 4, 2.1)] < cells[(kind, 4, 1.1)], kind
    # The clone agrees on feasibility for the overwhelming majority of
    # cells (the paper's similarity claim).
    assert agree >= total - 3
