"""Fig. 5: CPU metrics, network/disk bandwidth and latency vs load.

Six services (four single-tier apps plus the Social Network's TextService
and SocialGraphService) under low/medium/high load on platform A, actual
vs synthetic. Clones were profiled at medium load only — every other load
point runs without reprofiling.

Shape assertions: who wins per metric, the low-load IPC dip for
event-loop servers, disk traffic only for MongoDB, and error bands in the
paper's neighbourhood.
"""

import pytest
from conftest import APPS, RUN_SECONDS, SOCIALNET_LOADS, measure, write_result

from repro.analysis import compare_metrics
from repro.hw import PLATFORM_A
from repro.runtime import ExperimentConfig

METRICS = ("ipc", "branch", "l1i", "l1d", "l2", "llc")


def _row(tag, metrics, result, service):
    return (f"{tag:>10}"
            + "".join(f"{metrics.metric(m):>9.4f}" for m in METRICS)
            + f"{result.net_bandwidth(service) / 1e6:>10.1f}"
            + f"{result.disk_bandwidth(service) / 1e6:>10.1f}"
            + f"{result.latency_ms():>9.3f}{result.latency_ms(95):>9.3f}"
            + f"{result.latency_ms(99):>9.3f}")


HEADER = (f"{'':>10}" + "".join(f"{m:>9}" for m in METRICS)
          + f"{'netMB/s':>10}{'dskMB/s':>10}{'avg ms':>9}{'p95 ms':>9}"
          + f"{'p99 ms':>9}")


def test_fig5_single_tier_apps(benchmark, single_tier_clones):
    def run_all():
        data = {}
        for name, setup in APPS.items():
            original, synthetic, _report = single_tier_clones[name]
            for level, load in setup.loads.items():
                config = setup.config(seed=11)
                data[(name, level, "actual")] = (
                    measure(original, load, config))
                data[(name, level, "synthetic")] = (
                    measure(synthetic, load, config))
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    errors = {m: [] for m in METRICS + ("net", "disk")}
    for name, setup in APPS.items():
        for level in ("low", "medium", "high"):
            lines.append(f"--- {name} @ {level} load ---")
            lines.append(HEADER)
            actual = data[(name, level, "actual")]
            synth = data[(name, level, "synthetic")]
            am = actual.service(name)
            sm = synth.service(name)
            lines.append(_row("actual", am, actual, name))
            lines.append(_row("synthetic", sm, synth, name))
            comparison = compare_metrics(am, sm)
            for m in METRICS:
                err = comparison.error_of(m)
                if err != float("inf"):
                    errors[m].append(err)
            a_net = actual.net_bandwidth(name)
            s_net = synth.net_bandwidth(name)
            if a_net > 0:
                errors["net"].append(abs(s_net - a_net) / a_net)
            a_disk = actual.disk_bandwidth(name)
            if a_disk > 0:
                errors["disk"].append(
                    abs(synth.disk_bandwidth(name) - a_disk) / a_disk)
    lines.append("")
    lines.append("mean relative errors across apps and loads "
                 "(paper: 4.1%-12.1% for CPU metrics, ~0.1% for I/O):")
    for m, values in errors.items():
        if values:
            mean = sum(values) / len(values)
            lines.append(f"  {m:>6}: {mean:6.1%}  (n={len(values)})")
            benchmark.extra_info[f"err_{m}"] = round(mean, 4)
    write_result("fig5_load_sweep", "\n".join(lines))

    # --- shape assertions -------------------------------------------------
    # I/O bandwidth must track closely (the paper reports ~0.1%).
    assert sum(errors["net"]) / len(errors["net"]) < 0.10
    # Only MongoDB produces disk traffic, and its clone reproduces it.
    for name in APPS:
        medium_actual = data[(name, "medium", "actual")]
        if name == "mongodb":
            assert medium_actual.disk_bandwidth(name) > 1e6
            assert data[(name, "medium", "synthetic")].disk_bandwidth(
                name) > 1e6
        else:
            assert medium_actual.disk_bandwidth(name) == 0.0
    # Low-load IPC dip for the event-loop servers, in both versions.
    for name in ("memcached", "nginx"):
        for kind in ("actual", "synthetic"):
            low = data[(name, "low", kind)].service(name).ipc
            high = data[(name, "high", kind)].service(name).ipc
            assert low < high, (name, kind)
    # CPU-metric errors land in a band around the paper's (lenient 3x).
    for m in METRICS:
        mean = sum(errors[m]) / len(errors[m])
        assert mean < 0.40, (m, mean)


def test_fig5_socialnet_tiers(benchmark, socialnet_clone):
    original, synthetic, _report = socialnet_clone
    tiers = ("text-service", "social-graph-service")

    def run_all():
        data = {}
        for level, load in SOCIALNET_LOADS.items():
            config = ExperimentConfig(platform=PLATFORM_A,
                                      duration_s=RUN_SECONDS, seed=11)
            data[(level, "actual")] = measure(original, load, config)
            data[(level, "synthetic")] = measure(synthetic, load,
                                                        config)
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for tier in tiers:
        for level in ("low", "medium", "high"):
            lines.append(f"--- {tier} @ {level} load ---")
            lines.append(HEADER)
            for kind in ("actual", "synthetic"):
                result = data[(level, kind)]
                metrics = result.service(tier)
                lines.append(_row(kind, metrics, result, tier))
    write_result("fig5_socialnet_tiers", "\n".join(lines))
    # SocialGraphService has high IPC (small Reed98 working set) in both.
    for kind in ("actual", "synthetic"):
        result = data[("medium", kind)]
        assert result.service("social-graph-service").ipc > 0.45, kind
    # IPC error of the featured tiers stays bounded at medium load.
    for tier in tiers:
        actual_ipc = data[("medium", "actual")].service(tier).ipc
        synth_ipc = data[("medium", "synthetic")].service(tier).ipc
        assert abs(synth_ipc - actual_ipc) / actual_ipc < 0.45, tier
