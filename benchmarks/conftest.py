"""Shared fixtures for the paper-reproduction benchmarks.

Cloning is expensive, and several figures reuse the same clones, so the
clones are built once per session. Every benchmark writes its paper-style
table into ``benchmarks/results/<name>.txt`` (pytest captures stdout, so
files are the canonical artifact) and attaches headline numbers to the
pytest-benchmark ``extra_info``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import pytest

from repro.app.service import Deployment
from repro.app.workloads import (
    build_memcached,
    build_mongodb,
    build_nginx,
    build_redis,
)
from repro.app.workloads.socialnet import social_network_deployment
from repro.core import CloneRequest, DittoCloner
from repro.hw import PLATFORM_A
from repro.loadgen import LoadSpec
from repro.profiling import ProfilingBudget
from repro.runtime import ExperimentCache, ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: session-wide experiment memoization — figures revisit the same
#: (deployment, load, config) points (e.g. the medium-load validation
#: runs appear in Fig. 5, Fig. 7 and the §6.2.1 summary), and
#: run_experiment is deterministic, so cross-figure repeats are served
#: from memory. Route measurement runs through :func:`measure`.
MEASURE_CACHE = ExperimentCache(max_entries=512)


def measure(deployment, load, config):
    """``run_experiment`` through the shared session cache."""
    return MEASURE_CACHE.run(deployment, load, config)

#: duration of every measurement run (simulated seconds)
RUN_SECONDS = 0.04
#: duration of profiling runs
PROFILE_SECONDS = 0.02

BENCH_BUDGET = ProfilingBudget(
    sampled_requests=10,
    max_accesses_per_spec=768,
    max_istream_per_block=3072,
    branch_outcomes_per_site=160,
    max_sites_per_population=10,
    dep_samples_per_block=64,
    profile_duration_s=PROFILE_SECONDS,
)


@dataclass(frozen=True)
class AppSetup:
    """One single-tier application's benchmark configuration."""

    name: str
    builder: Callable[[], object]
    profiling_load: LoadSpec
    loads: Dict[str, LoadSpec]             # low / medium / high
    page_cache_bytes: Optional[float] = None
    has_disk: bool = False

    def config(self, duration_s: float = RUN_SECONDS, seed: int = 11,
               **overrides) -> ExperimentConfig:
        """A run configuration for this app on platform A."""
        return ExperimentConfig(
            platform=overrides.pop("platform", PLATFORM_A),
            duration_s=duration_s,
            seed=seed,
            page_cache_bytes=self.page_cache_bytes,
            **overrides,
        )


APPS: Dict[str, AppSetup] = {
    "memcached": AppSetup(
        name="memcached", builder=build_memcached,
        profiling_load=LoadSpec.open_loop(100_000),
        loads={"low": LoadSpec.open_loop(8_000),
               "medium": LoadSpec.open_loop(100_000),
               "high": LoadSpec.open_loop(250_000)},
    ),
    "nginx": AppSetup(
        name="nginx", builder=build_nginx,
        profiling_load=LoadSpec.open_loop(18_000),
        loads={"low": LoadSpec.open_loop(2_500),
               "medium": LoadSpec.open_loop(18_000),
               "high": LoadSpec.open_loop(34_000)},
    ),
    "mongodb": AppSetup(
        name="mongodb", builder=build_mongodb,
        profiling_load=LoadSpec.closed_loop(4),
        loads={"low": LoadSpec.closed_loop(1),
               "medium": LoadSpec.closed_loop(4),
               "high": LoadSpec.closed_loop(12)},
        page_cache_bytes=4 * 1024**3,
        has_disk=True,
    ),
    "redis": AppSetup(
        name="redis", builder=build_redis,
        profiling_load=LoadSpec.closed_loop(4),
        loads={"low": LoadSpec.closed_loop(1),
               "medium": LoadSpec.closed_loop(4),
               "high": LoadSpec.closed_loop(16)},
    ),
}

SOCIALNET_LOADS = {
    "low": LoadSpec.open_loop(400),
    "medium": LoadSpec.open_loop(1000),
    "high": LoadSpec.open_loop(1800),
}


def write_result(name: str, text: str) -> Path:
    """Persist one benchmark's paper-style table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


@pytest.fixture(scope="session")
def single_tier_clones() -> Dict[str, Tuple[Deployment, Deployment, object]]:
    """(original, synthetic, report) per single-tier app, tuned clones."""
    clones = {}
    for name, setup in APPS.items():
        original = Deployment.single(setup.builder())
        cloner = DittoCloner(fine_tune_tiers=True, max_tune_iterations=5,
                             budget=BENCH_BUDGET)
        result = cloner.clone(CloneRequest(
            deployment=original, load=setup.profiling_load,
            config=setup.config(duration_s=PROFILE_SECONDS, seed=5)))
        clones[name] = (original, result.synthetic, result.report)
    return clones


@pytest.fixture(scope="session")
def socialnet_clone() -> Tuple[Deployment, Deployment, object]:
    """(original, synthetic, report) for the 14-tier Social Network."""
    original = social_network_deployment()
    cloner = DittoCloner(fine_tune_tiers=False, budget=BENCH_BUDGET)
    config = ExperimentConfig(platform=PLATFORM_A,
                              duration_s=PROFILE_SECONDS * 2, seed=5)
    result = cloner.clone(CloneRequest(
        deployment=original, load=SOCIALNET_LOADS["medium"], config=config))
    return original, result.synthetic, result.report
