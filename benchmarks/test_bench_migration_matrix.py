"""Migration matrix: four tuned clones x destination platforms A, B, C.

Each single-tier clone is profiled and fine-tuned on platform A, saved
as an integrity-stamped bundle (with the new ``source_platform``
stanza), and then carried to every platform by the full migration
pipeline — preflight knob classification, warm-started re-tune, and the
destination fidelity gate scored against the fig7 error envelope
(:data:`~repro.migrate.MIGRATION_TOLERANCES`).

Expected shape: A->A is a pure transfer (every knob classified
TRANSFERS, zero re-tune iterations); A->B and A->C flag the
cache-geometry-derived knobs as NEEDS_RETUNE and spend a few warm-start
iterations before clearing the destination gate.
"""

from conftest import APPS, RUN_SECONDS, write_result

from repro.core.bundle import save_bundle
from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C
from repro.migrate import MigrationError, migrate_bundle

PLATFORMS = (PLATFORM_A, PLATFORM_B, PLATFORM_C)


def test_migration_matrix(benchmark, single_tier_clones, tmp_path_factory):
    outdir = tmp_path_factory.mktemp("migration-bundles")
    bundles = {}
    for name in APPS:
        _original, _synthetic, report = single_tier_clones[name]
        bundles[name] = save_bundle(
            report.features, outdir / f"{name}.bundle.json",
            entry_service=name,
            tuned_knobs={tier: t.knobs for tier, t in report.tuning.items()},
            source_platform=PLATFORM_A)

    def run_matrix():
        cells = {}
        for name, bundle in bundles.items():
            for platform in PLATFORMS:
                out = outdir / f"{name}.{platform.name}.migrated.json"
                try:
                    cells[(name, platform.name)] = migrate_bundle(
                        bundle, platform, out, seed=11,
                        duration_s=RUN_SECONDS, max_tune_iterations=3)
                except MigrationError as error:
                    cells[(name, platform.name)] = error
        return cells

    cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = [f"{'workload':<12}"
             + "".join(f"{p.name:>24}" for p in PLATFORMS)]
    for name in bundles:
        row = [f"{name:<12}"]
        for platform in PLATFORMS:
            cell = cells[(name, platform.name)]
            if isinstance(cell, MigrationError):
                row.append(f"refused[{cell.stage}]".rjust(24))
                continue
            stale = sum(len(k) for k in
                        cell.preflight.retune_knobs().values())
            iters = sum(cell.tuning_iterations.values())
            row.append(f"PASS e={cell.fidelity.mean_error:4.2f}"
                       f" it={iters} k={stale}".rjust(24))
        lines.append("".join(row))
    failing = sorted(
        {f"{check.service}/{check.metric}"
         for cell in cells.values()
         if not isinstance(cell, MigrationError)
         for check in cell.fidelity.failures()})
    lines.append(f"failing metrics anywhere: {failing or 'none'}")
    write_result("migration_matrix", "\n".join(lines))

    # Same-platform migration is pure transfer: the preflight classifies
    # every knob TRANSFERS and the gate passes without touching a tuner.
    for name in bundles:
        home = cells[(name, "A")]
        assert not isinstance(home, MigrationError), name
        assert home.preflight.retune_knobs() == {}, name
        assert sum(home.tuning_iterations.values()) == 0, name
    # Cross-platform cells flag the geometry-derived knobs for re-tune.
    for name in bundles:
        for dest in ("B", "C"):
            cell = cells[(name, dest)]
            if not isinstance(cell, MigrationError):
                assert cell.preflight.retune_knobs(), (name, dest)
    # The fig7 envelope holds across the bulk of the matrix even on the
    # never-profiled platforms.
    published = [c for c in cells.values()
                 if not isinstance(c, MigrationError)]
    assert len(published) / len(cells) >= 0.75, (
        f"{len(published)}/{len(cells)} migrations published")
    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["publish_rate"] = round(
        len(published) / len(cells), 4)
