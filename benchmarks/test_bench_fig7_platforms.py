"""Fig. 7: validation across platforms A, B, C.

Each clone was profiled **on platform A only** (at medium load); original
and synthetic then run on all three platforms. Shape claims from §6.2.2:

- all applications see higher L2 miss rates on B and C (smaller L2s);
- platform B (Haswell) gives consistently lower IPC;
- network/disk byte volumes are platform-independent;
- MongoDB's latency is far lower on A (SSD) than on B/C (HDD).
"""

from conftest import APPS, RUN_SECONDS, write_result

from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C
from repro.runtime import run_experiment

PLATFORMS = (PLATFORM_A, PLATFORM_B, PLATFORM_C)
METRICS = ("ipc", "branch", "l1i", "l1d", "l2", "llc")


def test_fig7_cross_platform(benchmark, single_tier_clones):
    def run_all():
        data = {}
        for name, setup in APPS.items():
            original, synthetic, _report = single_tier_clones[name]
            load = setup.loads["medium"]
            for platform in PLATFORMS:
                config = setup.config(platform=platform, seed=11)
                data[(name, platform.name, "actual")] = run_experiment(
                    original, load, config)
                data[(name, platform.name, "synthetic")] = run_experiment(
                    synthetic, load, config)
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for name in APPS:
        lines.append(f"--- {name} (profiled on A only) ---")
        lines.append(f"{'platform':<9}{'':>10}"
                     + "".join(f"{m:>9}" for m in METRICS)
                     + f"{'netMB/s':>10}{'dskMB/s':>10}{'p99 ms':>9}")
        for platform in PLATFORMS:
            for kind in ("actual", "synthetic"):
                result = data[(name, platform.name, kind)]
                metrics = result.service(name)
                lines.append(
                    f"{platform.name:<9}{kind:>10}"
                    + "".join(f"{metrics.metric(m):>9.4f}" for m in METRICS)
                    + f"{result.net_bandwidth(name) / 1e6:>10.1f}"
                    + f"{result.disk_bandwidth(name) / 1e6:>10.1f}"
                    + f"{result.latency_ms(99):>9.3f}")
    write_result("fig7_cross_platform", "\n".join(lines))

    for name in APPS:
        for kind in ("actual", "synthetic"):
            a = data[(name, "A", kind)].service(name)
            b = data[(name, "B", kind)].service(name)
            c = data[(name, "C", kind)].service(name)
            # Smaller L2s on B/C -> no lower L2 miss rates than on A.
            assert b.l2_miss_rate >= a.l2_miss_rate - 0.01, (name, kind)
            assert c.l2_miss_rate >= a.l2_miss_rate - 0.01, (name, kind)
        # Synthetic reacts with the same sign as the actual for IPC when
        # moving A -> B.
        actual_delta = (data[(name, "B", "actual")].service(name).ipc
                        - data[(name, "A", "actual")].service(name).ipc)
        synth_delta = (data[(name, "B", "synthetic")].service(name).ipc
                       - data[(name, "A", "synthetic")].service(name).ipc)
        if abs(actual_delta) > 0.02:
            assert actual_delta * synth_delta > 0, name
        # I/O volumes barely move across platforms (volume is load-bound;
        # closed-loop apps complete fewer requests on slower platforms,
        # so compare per-request bytes).
        for kind in ("actual", "synthetic"):
            per_req = {}
            for platform in PLATFORMS:
                result = data[(name, platform.name, kind)]
                metrics = result.service(name)
                per_req[platform.name] = (
                    (metrics.net_tx_bytes + metrics.net_rx_bytes)
                    / max(1, metrics.requests))
            base = per_req["A"]
            for p in ("B", "C"):
                assert abs(per_req[p] - base) / base < 0.15, (name, kind, p)
    # MongoDB latency: SSD (A) is far faster than the HDD platforms.
    for kind in ("actual", "synthetic"):
        a = data[("mongodb", "A", kind)].latency_ms(50)
        b = data[("mongodb", "B", kind)].latency_ms(50)
        assert b > 3 * a, kind
