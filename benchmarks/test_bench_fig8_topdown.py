"""Fig. 8: top-down CPI breakdown, actual vs synthetic.

Stacked CPI contributions (retiring / front-end / bad speculation /
back-end) for the four single-tier services plus the two featured Social
Network tiers. Shape claims: the clone reproduces the original's dominant
bucket, and the services show the cloud-typical significant front-end
fraction the paper contrasts with SPEC-style workloads.
"""

from conftest import APPS, RUN_SECONDS, SOCIALNET_LOADS, write_result

from repro.hw import PLATFORM_A
from repro.runtime import ExperimentConfig, run_experiment

BUCKETS = ("retiring", "frontend", "bad_speculation", "backend")


def _cpi_row(metrics):
    contributions = metrics.topdown.cpi_contributions(
        metrics.timing.instructions, PLATFORM_A.uarch.issue_width)
    return contributions


def test_fig8_topdown_breakdown(benchmark, single_tier_clones,
                                socialnet_clone):
    def run_all():
        data = {}
        for name, setup in APPS.items():
            original, synthetic, _report = single_tier_clones[name]
            load = setup.loads["medium"]
            config = setup.config(seed=11)
            data[(name, "actual")] = run_experiment(
                original, load, config).service(name)
            data[(name, "synthetic")] = run_experiment(
                synthetic, load, config).service(name)
        original, synthetic, _report = socialnet_clone
        config = ExperimentConfig(platform=PLATFORM_A,
                                  duration_s=RUN_SECONDS, seed=11)
        actual = run_experiment(original, SOCIALNET_LOADS["medium"], config)
        synth = run_experiment(synthetic, SOCIALNET_LOADS["medium"], config)
        for tier in ("text-service", "social-graph-service"):
            data[(tier, "actual")] = actual.service(tier)
            data[(tier, "synthetic")] = synth.service(tier)
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    services = list(APPS) + ["text-service", "social-graph-service"]
    lines = [f"{'service':<22}{'':>10}{'CPI':>8}"
             + "".join(f"{b:>10}" for b in BUCKETS)]
    for service in services:
        for kind in ("actual", "synthetic"):
            metrics = data[(service, kind)]
            contributions = _cpi_row(metrics)
            lines.append(
                f"{service:<22}{kind:>10}{metrics.cpi:>8.3f}"
                + "".join(f"{contributions[b]:>10.3f}" for b in BUCKETS))
    write_result("fig8_topdown", "\n".join(lines))

    for service in services:
        actual = data[(service, "actual")]
        synth = data[(service, "synthetic")]
        a_contrib = _cpi_row(actual)
        s_contrib = _cpi_row(synth)
        # CPI within a band.
        assert abs(synth.cpi - actual.cpi) / actual.cpi < 0.45, service
        # The dominant non-retiring bucket matches.
        a_stall = max(("frontend", "bad_speculation", "backend"),
                      key=a_contrib.get)
        s_rank = sorted(("frontend", "bad_speculation", "backend"),
                        key=s_contrib.get, reverse=True)
        assert a_stall in s_rank[:2], (service, a_stall, s_rank)
        # Cloud services show a real front-end component (the paper's
        # contrast with SPEC-style CPU suites).
        assert a_contrib["frontend"] > 0.02 * actual.cpi, service
        assert s_contrib["frontend"] > 0.02 * synth.cpi, service
