"""Fig. 10: interference impact on NGINX, actual vs synthetic.

The original is profiled in isolation; both versions then co-run with the
paper's stressors: a hyperthreading spinner, L1d and L2 cache thrashers
on the SMT sibling, an LLC antagonist on the socket (iBench), and a
network-bandwidth hog (iperf3).

Shape claims: each stressor degrades its resource in both versions, with
the same direction — HT/L1d/L2 lower IPC, LLC raises LLC misses, net
raises tail latency.
"""

from conftest import APPS, write_result

from repro.app.stressors import interference_suite, stressor
from repro.runtime import run_experiment

SCENARIOS = ["none"] + interference_suite()
COLUMNS = ("ipc", "l1i", "l1d", "l2", "llc")


def test_fig10_interference(benchmark, single_tier_clones):
    setup = APPS["nginx"]
    original, synthetic, _report = single_tier_clones["nginx"]
    load = setup.loads["medium"]

    def run_all():
        data = {}
        for scenario in SCENARIOS:
            corunners = () if scenario == "none" else (stressor(scenario),)
            config = setup.config(seed=11, corunners=corunners)
            data[(scenario, "actual")] = run_experiment(original, load,
                                                        config)
            data[(scenario, "synthetic")] = run_experiment(synthetic, load,
                                                           config)
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'scenario':<10}{'':>10}"
             + "".join(f"{c:>9}" for c in COLUMNS) + f"{'p99 ms':>9}"]
    for scenario in SCENARIOS:
        for kind in ("actual", "synthetic"):
            result = data[(scenario, kind)]
            metrics = result.service("nginx")
            lines.append(
                f"{scenario:<10}{kind:>10}"
                + "".join(f"{metrics.metric(c):>9.4f}" for c in COLUMNS)
                + f"{result.latency_ms(99):>9.3f}")
    write_result("fig10_interference", "\n".join(lines))

    for kind in ("actual", "synthetic"):
        base = data[("none", kind)]
        base_m = base.service("nginx")
        # HT spinner steals ports: IPC drops.
        assert (data[("ht", kind)].service("nginx").ipc
                < base_m.ipc - 0.01), kind
        # L1d thrasher raises L1d misses.
        assert (data[("l1d", kind)].service("nginx").l1d_miss_rate
                > base_m.l1d_miss_rate), kind
        # L2 thrasher raises L2-level pressure (miss rate or accesses).
        l2_noisy = data[("l2", kind)].service("nginx")
        assert (l2_noisy.l2_miss_rate >= base_m.l2_miss_rate
                or l2_noisy.timing.l2_accesses > base_m.timing.l2_accesses
                ), kind
        # iperf3 contention inflates tail latency.
        assert (data[("net", kind)].latency_ms(99)
                > base.latency_ms(99) * 1.2), kind
    # Actual and synthetic move in the same direction for IPC under every
    # cache/HT stressor.
    for scenario in ("ht", "l1d", "l2", "llc"):
        actual_delta = (data[(scenario, "actual")].service("nginx").ipc
                        - data[("none", "actual")].service("nginx").ipc)
        synth_delta = (data[(scenario, "synthetic")].service("nginx").ipc
                       - data[("none", "synthetic")].service("nginx").ipc)
        if abs(actual_delta) > 0.01:
            assert actual_delta * synth_delta > 0, scenario
