"""Fidelity under faults: does the clone degrade like the original?

Ditto's claim is that a clone is a stand-in for the original in studies
the original's owners would never allow — and resilience studies are the
canonical example. Here the same scripted :class:`FaultPlan` (packet
loss, latency spikes, a mid-run node crash) plus the same resilience
policy runs against the original memcached and its tuned clone, and we
compare how the two *degrade*: tail inflation and error-rate under
faults should move together, not just the clean-run averages.

Shape assertions: faults hurt both deployments' tails, error rates
appear in both and agree in magnitude, and both fault timelines draw
from identical schedules (same seed ⇒ same crash window).
"""

import pytest
from conftest import APPS, RUN_SECONDS, measure, write_result

from repro.faults import (
    FaultPlan,
    FaultWindow,
    LatencySpikeFault,
    NodeCrashFault,
    PacketLossFault,
)
from repro.runtime import ResilienceConfig, RetryPolicy

#: the scripted outage: steady 5% packet loss, a latency-spike burst in
#: the middle third, and a node crash covering 15% of the run
FAULT_PLAN = FaultPlan((
    PacketLossFault(rate=0.05, retransmit_delay_s=200e-6),
    LatencySpikeFault(extra_s=150e-6, probability=0.3,
                      window=FaultWindow(RUN_SECONDS / 3,
                                         2 * RUN_SECONDS / 3)),
    NodeCrashFault(node="node0", at_s=0.7 * RUN_SECONDS,
                   downtime_s=0.15 * RUN_SECONDS),
))

RESILIENCE = ResilienceConfig(
    rpc_timeout_s=5e-3,
    retry=RetryPolicy(max_attempts=2),
    max_queue_depth=256,
)


def _summary(result, service):
    return {
        "p50_ms": result.latency_ms(50),
        "p99_ms": result.latency_ms(99),
        "error_rate": result.error_rate,
        "ok": result.outcome_counts()["ok"],
        "errors": result.outcome_counts()["error"],
        "shed": result.outcome_counts()["shed"],
        "faults": dict(result.faults.counts()) if result.faults else {},
    }


def _row(tag, s):
    return (f"{tag:>22}{s['p50_ms']:>9.3f}{s['p99_ms']:>9.3f}"
            f"{s['error_rate']:>8.1%}{s['ok']:>7}{s['errors']:>7}"
            f"{s['shed']:>6}")


def test_fault_fidelity(benchmark, single_tier_clones):
    original, synthetic, _report = single_tier_clones["memcached"]
    setup = APPS["memcached"]
    load = setup.loads["medium"]

    def run_all():
        clean = setup.config(seed=11)
        faulted = setup.config(seed=11, fault_plan=FAULT_PLAN,
                               resilience=RESILIENCE)
        return {
            ("clean", "actual"): measure(original, load, clean),
            ("clean", "synthetic"): measure(synthetic, load, clean),
            ("faulted", "actual"): measure(original, load, faulted),
            ("faulted", "synthetic"): measure(synthetic, load, faulted),
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    summaries = {key: _summary(result, "memcached")
                 for key, result in data.items()}

    header = (f"{'':>22}{'p50 ms':>9}{'p99 ms':>9}{'err':>8}"
              f"{'ok':>7}{'errors':>7}{'shed':>6}")
    lines = ["same FaultPlan + resilience policy on original and clone",
             header]
    for scenario in ("clean", "faulted"):
        for who in ("actual", "synthetic"):
            lines.append(_row(f"{scenario}/{who}",
                              summaries[(scenario, who)]))

    act, syn = summaries[("faulted", "actual")], summaries[
        ("faulted", "synthetic")]
    act_clean = summaries[("clean", "actual")]
    syn_clean = summaries[("clean", "synthetic")]

    act_p99_inflation = act["p99_ms"] / act_clean["p99_ms"]
    syn_p99_inflation = syn["p99_ms"] / syn_clean["p99_ms"]
    err_divergence = abs(act["error_rate"] - syn["error_rate"])
    lines += [
        "",
        f"p99 inflation under faults: actual {act_p99_inflation:.2f}x, "
        f"synthetic {syn_p99_inflation:.2f}x",
        f"error-rate divergence |actual - synthetic|: "
        f"{err_divergence:.1%}",
        f"fault events actual={act['faults']} synthetic={syn['faults']}",
    ]
    write_result("fault_fidelity", "\n".join(lines))
    benchmark.extra_info.update(
        actual_p99_inflation=act_p99_inflation,
        synthetic_p99_inflation=syn_p99_inflation,
        error_rate_divergence=err_divergence,
    )

    # Clean runs see no failures at all; resilience is dormant.
    assert act_clean["error_rate"] == 0.0
    assert syn_clean["error_rate"] == 0.0
    # The crash window fails requests on both deployments, in
    # comparable proportion (same arrival process, same outage).
    assert act["error_rate"] > 0.0
    assert syn["error_rate"] > 0.0
    assert err_divergence < 0.10
    # Loss/spike penalties inflate both tails; the clone's tail moves
    # in the same direction and a comparable magnitude.
    assert act_p99_inflation > 1.02
    assert syn_p99_inflation > 1.02
    assert (abs(act_p99_inflation - syn_p99_inflation)
            / act_p99_inflation) < 0.5
    # Both runs executed the same scripted outage.
    assert act["faults"]["node_crash"] == syn["faults"]["node_crash"] == 1
    assert act["faults"]["packet_loss"] > 0
    assert syn["faults"]["packet_loss"] > 0
